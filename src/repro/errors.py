"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses communicate *which* stage of the pipeline
failed: input validation, infeasibility of a scheduling instance, capacity
violations discovered during verification, or numerical solver trouble.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError):
    """An input object (flow, topology, parameter) is malformed."""


class TopologyError(ReproError):
    """A topology is structurally invalid or a node/edge lookup failed."""


class InfeasibleError(ReproError):
    """No schedule can meet every deadline for the given instance.

    Raised by the schedulers when the workload is over-constrained, for
    example when a flow's span has zero available time on a link that must
    carry it.
    """


class CapacityError(ReproError):
    """A produced schedule drives some link beyond its maximum rate ``C``.

    The paper's minimum-energy schedule legitimately relaxes the capacity
    constraint (Section III-A); this error is raised only by *strict*
    verification entry points.  Non-strict entry points report violations in
    a :class:`repro.scheduling.schedule.FeasibilityReport` instead.
    """


class SolverError(ReproError):
    """A numerical solver failed to converge or returned garbage."""
