"""JSON persistence for workloads, topologies, and schedules.

A reproduction library lives or dies by replayability: this module
round-trips every experiment artifact through plain JSON so workloads can
be archived, schedules diffed across algorithm versions, and failures
reported with a self-contained repro file.

Formats are versioned; loaders refuse unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ValidationError
from repro.flows.flow import Flow, FlowSet
from repro.scheduling.schedule import FlowSchedule, Schedule, Segment
from repro.topology.base import Topology, build_topology

__all__ = [
    "flows_to_json",
    "flows_from_json",
    "topology_to_json",
    "topology_from_json",
    "schedule_to_json",
    "schedule_from_json",
    "save_json",
    "load_json",
]

_FLOWS_VERSION = 1
_TOPOLOGY_VERSION = 1
_SCHEDULE_VERSION = 1


def _check_version(payload: dict, kind: str, expected: int) -> None:
    if not isinstance(payload, dict):
        raise ValidationError(f"{kind}: expected a JSON object")
    if payload.get("kind") != kind:
        raise ValidationError(
            f"expected kind {kind!r}, got {payload.get('kind')!r}"
        )
    if payload.get("version") != expected:
        raise ValidationError(
            f"{kind}: unsupported version {payload.get('version')!r} "
            f"(expected {expected})"
        )


# ----------------------------------------------------------------------
# Flows.
# ----------------------------------------------------------------------
def flows_to_json(flows: FlowSet) -> dict[str, Any]:
    """Serialize a :class:`FlowSet` to a JSON-safe dict."""
    return {
        "kind": "flows",
        "version": _FLOWS_VERSION,
        "flows": [
            {
                "id": f.id,
                "src": f.src,
                "dst": f.dst,
                "size": f.size,
                "release": f.release,
                "deadline": f.deadline,
            }
            for f in flows
        ],
    }


def flows_from_json(payload: dict[str, Any]) -> FlowSet:
    """Rebuild a :class:`FlowSet`; validation re-runs on construction."""
    _check_version(payload, "flows", _FLOWS_VERSION)
    return FlowSet(
        Flow(
            id=entry["id"],
            src=entry["src"],
            dst=entry["dst"],
            size=entry["size"],
            release=entry["release"],
            deadline=entry["deadline"],
        )
        for entry in payload["flows"]
    )


# ----------------------------------------------------------------------
# Topologies.
# ----------------------------------------------------------------------
def topology_to_json(topology: Topology) -> dict[str, Any]:
    """Serialize a topology as its link list plus host roles."""
    return {
        "kind": "topology",
        "version": _TOPOLOGY_VERSION,
        "name": topology.name,
        "hosts": list(topology.hosts),
        "links": [list(edge) for edge in topology.edges],
    }


def topology_from_json(payload: dict[str, Any]) -> Topology:
    """Rebuild a topology (structure-identical, roles preserved)."""
    _check_version(payload, "topology", _TOPOLOGY_VERSION)
    return build_topology(
        links=[(u, v) for u, v in payload["links"]],
        hosts=payload["hosts"],
        name=payload["name"],
    )


# ----------------------------------------------------------------------
# Schedules.
# ----------------------------------------------------------------------
def schedule_to_json(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule with its flows, paths, and rate segments."""
    entries = []
    for fs in schedule:
        entries.append(
            {
                "flow": {
                    "id": fs.flow.id,
                    "src": fs.flow.src,
                    "dst": fs.flow.dst,
                    "size": fs.flow.size,
                    "release": fs.flow.release,
                    "deadline": fs.flow.deadline,
                },
                "path": list(fs.path),
                "segments": [
                    {"start": s.start, "end": s.end, "rate": s.rate}
                    for s in fs.segments
                ],
            }
        )
    return {
        "kind": "schedule",
        "version": _SCHEDULE_VERSION,
        "flows": entries,
    }


def schedule_from_json(payload: dict[str, Any]) -> Schedule:
    """Rebuild a schedule; all structural validation re-runs."""
    _check_version(payload, "schedule", _SCHEDULE_VERSION)
    flow_schedules = []
    for entry in payload["flows"]:
        f = entry["flow"]
        flow = Flow(
            id=f["id"],
            src=f["src"],
            dst=f["dst"],
            size=f["size"],
            release=f["release"],
            deadline=f["deadline"],
        )
        flow_schedules.append(
            FlowSchedule(
                flow=flow,
                path=tuple(entry["path"]),
                segments=tuple(
                    Segment(start=s["start"], end=s["end"], rate=s["rate"])
                    for s in entry["segments"]
                ),
            )
        )
    return Schedule(flow_schedules)


# ----------------------------------------------------------------------
# File helpers.
# ----------------------------------------------------------------------
def save_json(payload: dict[str, Any], path: str) -> None:
    """Write any of the serialized payloads to disk (pretty-printed)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict[str, Any]:
    """Read a payload back; dispatch on its ``kind`` with the loaders."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ValidationError(f"{path}: not a repro JSON artifact")
    return payload
