"""Link power models (speed scaling + power-down)."""

from repro.power.model import PowerModel

__all__ = ["PowerModel"]
