"""Link power model combining speed scaling and power-down (paper Eq. (1)).

The paper models every link (the pair of ports at its ends) with the power
function

.. math::

    f(x) = \\begin{cases} 0 & x = 0 \\\\
                          \\sigma + \\mu x^\\alpha & 0 < x \\le C \\end{cases}

where ``sigma`` is the idle (chassis/state-keeping) power, ``mu`` scales the
dynamic term, ``alpha > 1`` makes the dynamic term superadditive, and ``C``
is the maximum transmission rate.  This module provides:

* :class:`PowerModel` — the function itself plus the derived quantities the
  algorithms need (derivative, power-per-bit, optimal operating rate
  ``R_opt`` of Lemma 3, convex envelope used by the fractional relaxation).
* convenience constructors matching the paper's evaluation settings
  (``f(x) = x^2`` and ``f(x) = x^4``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Power function ``f(x) = sigma + mu * x**alpha`` for ``0 < x <= capacity``.

    Parameters
    ----------
    sigma:
        Idle power drawn whenever the link is powered on, even at rate 0+.
        A link may avoid ``sigma`` only by being powered down for the whole
        horizon (the paper's no-toggling assumption).
    mu:
        Dynamic power coefficient, must be positive.
    alpha:
        Dynamic power exponent, must be strictly greater than 1 so that the
        function is superadditive and the scheduling problem is convex.
    capacity:
        Maximum transmission rate ``C`` of the link.  ``math.inf`` is
        allowed and models the paper's relaxed minimum-energy schedule.
    """

    sigma: float = 0.0
    mu: float = 1.0
    alpha: float = 2.0
    capacity: float = math.inf

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValidationError(f"sigma must be >= 0, got {self.sigma}")
        if self.mu <= 0:
            raise ValidationError(f"mu must be > 0, got {self.mu}")
        if self.alpha <= 1:
            raise ValidationError(
                f"alpha must be > 1 for superadditivity, got {self.alpha}"
            )
        if self.capacity <= 0:
            raise ValidationError(f"capacity must be > 0, got {self.capacity}")

    # ------------------------------------------------------------------
    # Constructors mirroring the paper's evaluation settings.
    # ------------------------------------------------------------------
    @classmethod
    def quadratic(cls, capacity: float = math.inf, sigma: float = 0.0) -> "PowerModel":
        """The paper's ``f(x) = x^2`` evaluation setting."""
        return cls(sigma=sigma, mu=1.0, alpha=2.0, capacity=capacity)

    @classmethod
    def quartic(cls, capacity: float = math.inf, sigma: float = 0.0) -> "PowerModel":
        """The paper's ``f(x) = x^4`` evaluation setting."""
        return cls(sigma=sigma, mu=1.0, alpha=4.0, capacity=capacity)

    @classmethod
    def with_optimal_rate(
        cls, r_opt: float, mu: float = 1.0, alpha: float = 2.0,
        capacity: float = math.inf,
    ) -> "PowerModel":
        """Build a model whose Lemma-3 optimal rate equals ``r_opt``.

        Inverts ``R_opt = (sigma / (mu (alpha - 1)))**(1/alpha)`` for sigma,
        which is how the Theorem-2 reduction pins ``R_opt = B``.
        """
        if r_opt <= 0:
            raise ValidationError(f"r_opt must be > 0, got {r_opt}")
        sigma = mu * (alpha - 1.0) * r_opt**alpha
        return cls(sigma=sigma, mu=mu, alpha=alpha, capacity=capacity)

    # ------------------------------------------------------------------
    # The power function and its calculus.
    # ------------------------------------------------------------------
    def power(self, rate: float) -> float:
        """Instantaneous power ``f(rate)``; 0 when the link is powered down."""
        if rate <= 0.0:
            return 0.0
        return self.sigma + self.mu * rate**self.alpha

    def dynamic_power(self, rate: float) -> float:
        """The speed-scaling term ``mu * rate**alpha`` alone (``g`` in the paper)."""
        if rate <= 0.0:
            return 0.0
        return self.mu * rate**self.alpha

    def dynamic_derivative(self, rate: float) -> float:
        """``d/dx (mu x^alpha) = mu alpha x^(alpha-1)``; 0 at rate 0."""
        if rate <= 0.0:
            return 0.0
        return self.mu * self.alpha * rate ** (self.alpha - 1.0)

    def energy(self, rate: float, duration: float) -> float:
        """Energy of running at a constant ``rate`` for ``duration`` time."""
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        return self.power(rate) * duration

    def power_rate(self, rate: float) -> float:
        """Power per unit of traffic ``f(x)/x`` (Definition 3). Requires ``x > 0``."""
        if rate <= 0.0:
            raise ValidationError("power_rate requires a strictly positive rate")
        return self.power(rate) / rate

    # ------------------------------------------------------------------
    # Lemma 3 and the convex envelope.
    # ------------------------------------------------------------------
    @property
    def r_opt(self) -> float:
        """Lemma 3: the rate minimizing power-per-bit, ignoring capacity.

        ``R_opt = (sigma / (mu (alpha - 1)))**(1/alpha)``.  With ``sigma = 0``
        this degenerates to 0 (slower is always cheaper per bit).
        """
        if self.sigma == 0.0:
            return 0.0
        return (self.sigma / (self.mu * (self.alpha - 1.0))) ** (1.0 / self.alpha)

    @property
    def best_operating_rate(self) -> float:
        """``min(R_opt, capacity)`` — the achievable power-per-bit optimum."""
        return min(self.r_opt, self.capacity) if self.sigma > 0 else 0.0

    def envelope(self, rate: float) -> float:
        """Convex envelope of ``f`` on ``[0, capacity]``.

        ``f`` jumps from 0 to ``sigma`` at 0+, so it is not convex.  Its
        envelope is linear (slope ``f(x*)/x*``) up to ``x* = min(R_opt, C)``
        and equals ``f`` beyond.  The envelope is the standard relaxation
        cost for power-down models (Andrews et al. [16]) and is what the
        fractional lower bound integrates.  With ``sigma = 0`` the envelope
        is exactly ``f`` for ``x > 0``.
        """
        if rate <= 0.0:
            return 0.0
        if self.sigma == 0.0:
            return self.mu * rate**self.alpha
        x_star = self.best_operating_rate
        if rate >= x_star:
            return self.power(rate)
        return rate * self.power(x_star) / x_star

    def envelope_derivative(self, rate: float) -> float:
        """Derivative (subgradient at the kink) of :meth:`envelope`."""
        if self.sigma == 0.0:
            return self.dynamic_derivative(rate)
        x_star = self.best_operating_rate
        if rate < x_star:
            return self.power(x_star) / x_star
        return self.dynamic_derivative(rate)

    # ------------------------------------------------------------------
    # Misc helpers.
    # ------------------------------------------------------------------
    def check_rate(self, rate: float, tol: float = 1e-9) -> bool:
        """True when ``0 <= rate <= capacity`` up to tolerance ``tol``."""
        return -tol <= rate <= self.capacity * (1.0 + tol) + tol

    def with_capacity(self, capacity: float) -> "PowerModel":
        """A copy of this model with a different maximum rate."""
        return PowerModel(
            sigma=self.sigma, mu=self.mu, alpha=self.alpha, capacity=capacity
        )

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``f(x) = 2 + 1*x^2, C = 10``."""
        cap = "inf" if math.isinf(self.capacity) else f"{self.capacity:g}"
        return (
            f"f(x) = {self.sigma:g} + {self.mu:g}*x^{self.alpha:g}, C = {cap}"
        )
