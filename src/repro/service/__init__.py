"""Sharded streaming-replay service (DESIGN.md Section 11).

Production-shaped serving layer over the replay machinery: topology
partitioning along natural locality boundaries
(:mod:`~repro.service.partition`), per-shard warm relaxation pipelines in
long-lived worker processes with asynchronously pipelined windows
(:mod:`~repro.service.sharded`), degrade-under-pressure backpressure
(:mod:`~repro.service.degrade`), and a snapshot/restore-capable admission
facade (:mod:`~repro.service.api`).
"""

from repro.service.api import ReplayService
from repro.service.degrade import DegradeController, SolveBudget
from repro.service.partition import (
    Shard,
    TopologyPartition,
    partition_topology,
)
from repro.service.sharded import ShardedReplayEngine, WindowStats

__all__ = [
    "ReplayService",
    "DegradeController",
    "SolveBudget",
    "Shard",
    "TopologyPartition",
    "partition_topology",
    "ShardedReplayEngine",
    "WindowStats",
]
