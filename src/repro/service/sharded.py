"""Sharded streaming replay: partitioned relaxation shards, pipelined windows.

The single-owner :class:`~repro.traces.replay.ReplayEngine` runs one
policy on one fabric in one process.  This module scales the same replay
semantics out: the fabric is split by :func:`~repro.service.partition.
partition_topology` into shards, each shard owns a **warm**
:class:`~repro.core.dcfsr.RelaxationPipeline` living in a long-lived
:class:`~repro.experiments.parallel.WorkerGroup` process, and each window
of arrivals is scattered to the shards that can solve its flows locally.
Only two things ever cross a process boundary per window: the shard's
restriction of the background load going out (a
:class:`~repro.routing.background.BackgroundProfile` in the default
interval-resolved mode, the flat window-mean vector in ``"mean"`` mode),
and ``(flow id, path)`` pairs coming back — the DESIGN.md Section 11
shard protocol.

Division of labor per window ``k``:

* **Intra-shard flows** (both endpoints in one connected component of one
  shard) are relaxed and rounded *inside* that shard's worker, against
  the shard-local restriction of the lagged background vector.
* **Cross-shard flows** are routed in the parent on the boundary-aware
  global view with marginal envelope-cost routing (the
  :class:`~repro.traces.policies.OnlineDensityPolicy` machinery): cheap,
  load-aware, and deterministic.  They are the only traffic that can
  load a boundary link.
* **Accounting** goes through the exact same
  :class:`~repro.traces.replay.WindowAccountant` the single-owner engine
  uses — commitments are re-merged in arrival order, so verdicts, energy
  sweeps and capacity checks are shared code, not reimplementations.

**Pipelining.**  ``pipeline_depth = d`` keeps up to ``d`` windows in
flight: window ``k`` is dispatched as soon as its arrivals are complete,
and the results of window ``k - d`` are collected (committed, finalized)
just before.  The background visible to window ``k`` is therefore the
commitments of windows ``<= k - d`` — *structurally* lagged, a function
of the window index alone, never of worker timing.  That staleness is
the price of overlap (``d = 1`` recovers the single-owner engine's
current-background semantics) and is exactly what makes
:meth:`snapshot_state`/:meth:`restore_state` reproduce an uninterrupted
run bit for bit: a snapshot drains worker *results* into the in-flight
entries without committing them, so a restored engine replays the same
dispatch/collect schedule with the same lagged views.

**Degradation** is decided per window by a
:class:`~repro.service.degrade.DegradeController` and recorded honestly
on the report (see :mod:`repro.service.degrade`).
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Iterable, Sequence

import numpy as np

from repro.core.dcfsr import RelaxationPipeline
from repro.errors import TopologyError, ValidationError
from repro.experiments.parallel import WorkerCrash, WorkerGroup
from repro.flows.flow import Flow, FlowSet
from repro.power.model import PowerModel
from repro.routing.background import BackgroundProfile
from repro.routing.costs import envelope_cost
from repro.routing.fastpath import FastRouter, LoadLedger
from repro.routing.rounding import argmax_paths, sample_paths
from repro.scheduling.schedule import FlowSchedule, Segment
from repro.service.degrade import DegradeController, SolveBudget
from repro.service.partition import TopologyPartition, partition_topology
from repro.sim.churn import (
    WORKER_CRASH,
    FaultEvent,
    FaultSchedule,
    survivor_shortest_path,
)
from repro.topology.base import Topology, path_edges
from repro.traces.repair import DEAD_EDGE_WEIGHT, ChurnManager
from repro.traces.replay import (
    ReplayReport,
    ShardStats,
    WindowAccountant,
    flow_verdict,
)

__all__ = ["WindowStats", "ShardedReplayEngine"]

SNAPSHOT_KIND = "repro-sharded-replay"
# v2: the accountant snapshot switched from the per-flow "live" dict to
# flat piece arrays, and the config grew ``background_mode``.
# v3: churn — link-fault/repair state, worker-crash events, per-shard
# checkpoints, and the dead-link element in window messages.
# v4: correlated failure domains — the churn snapshot carries per-link
# outage multiplicities plus the domain registry/down-domain/down-switch
# state bit-for-bit, in-flight entries pin their dispatch-time dead-link
# view, and the service state grew the dark-shard (evacuation) set and
# the ``failure_domains``/``srlg_diverse`` config.
SNAPSHOT_VERSION = 4


@dataclass(frozen=True)
class WindowStats:
    """Per-window service telemetry (what ``ReplayService.poll`` returns)."""

    index: int
    start: float
    end: float
    arrivals: int
    served: int
    misses: int
    cross_flows: int
    degraded: bool
    #: Critical-path worker solve time (max over the window's shards).
    solve_s: float

    def describe(self) -> str:
        tag = " DEGRADED" if self.degraded else ""
        return (
            f"window {self.index} [{self.start:g}, {self.end:g}): "
            f"{self.served}/{self.arrivals} served "
            f"({self.cross_flows} cross-shard), {self.misses} misses, "
            f"solve {self.solve_s:.3g}s{tag}"
        )


class _ShardSolver:
    """Worker-side handler: one warm relaxation pipeline per shard.

    Built *inside* the forked worker by the :class:`WorkerGroup` factory,
    so the pipeline's session state never crosses a pipe — only window
    messages and ``(flow id, path)`` results do.  The pipeline is created
    lazily on the first relaxed window (greedy-mode services never pay
    for it).
    """

    def __init__(
        self,
        shard,
        power: PowerModel,
        config: tuple[int, int, float, str],
    ) -> None:
        self._shard = shard
        self._power = power
        seed, self._fw_iters, self._fw_gap, self._rounding = config
        self._pipeline: RelaxationPipeline | None = None
        self._rng = np.random.default_rng((seed, shard.index))
        self._paths: dict[tuple[str, str], tuple[str, ...]] = {}
        self.max_weight_drift = 0.0

    def __call__(self, msg):
        kind = msg[0]
        if kind == "window":
            return self._solve_window(msg[1], msg[2], msg[3], msg[4])
        if kind == "drift":
            return self.max_weight_drift
        if kind == "snapshot":
            return pickle.dumps(
                {
                    "pipeline": self._pipeline,
                    "rng": self._rng,
                    "drift": self.max_weight_drift,
                }
            )
        if kind == "restore":
            state = pickle.loads(msg[1])
            self._pipeline = state["pipeline"]
            self._rng = state["rng"]
            self.max_weight_drift = state["drift"]
            return None
        raise ValidationError(f"unknown shard message {kind!r}")

    def _shortest(self, src: str, dst: str) -> tuple[str, ...]:
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            path = self._shard.topology.shortest_path(src, dst)
            self._paths[key] = path
        return path

    def _solve_window(
        self,
        flows: Sequence[Flow],
        background: np.ndarray | BackgroundProfile | None,
        relax: bool,
        down_local: frozenset[int],
    ):
        t_start = perf_counter()
        if relax:
            if self._pipeline is None:
                self._pipeline = RelaxationPipeline(
                    self._shard.topology,
                    self._power,
                    max_iterations=self._fw_iters,
                    gap_tolerance=self._fw_gap,
                )
            flow_set = FlowSet(flows)
            relaxation = self._pipeline.solve(
                flow_set, background=background, warm=True
            )
            weights = self._pipeline.weights(flow_set, relaxation)
            if weights.max_drift > self.max_weight_drift:
                self.max_weight_drift = weights.max_drift
            if self._rounding == "deterministic":
                paths = argmax_paths(weights)
            else:
                paths = sample_paths(weights, self._rng)
        else:
            paths = [self._shortest(f.src, f.dst) for f in flows]
        if down_local:
            # Fault fix-up: any solved/cached route crossing a dead local
            # link is replaced by the survivor BFS route; a pair with no
            # surviving route ships ``None`` (the parent leaves the flow
            # unserved).  The empty-set path above stays byte-identical.
            topo = self._shard.topology
            edge_id = topo.edge_id
            fixed = []
            for flow, path in zip(flows, paths):
                if any(
                    edge_id(e) in down_local for e in path_edges(path)
                ):
                    try:
                        path = survivor_shortest_path(
                            topo, down_local, flow.src, flow.dst
                        )
                    except TopologyError:
                        path = None
                fixed.append(path)
            paths = fixed
        pairs = [(flow.id, path) for flow, path in zip(flows, paths)]
        return pairs, perf_counter() - t_start, not relax


@dataclass
class _InFlight:
    """One dispatched-but-uncommitted window (plain data, picklable)."""

    index: int
    start: float
    end: float
    arrivals: list[Flow]
    assign: dict  # flow id -> shard index (cross-shard flows absent)
    shard_ids: tuple[int, ...]
    cross: dict = field(default_factory=dict)  # flow id -> FlowSchedule
    relax: bool = True
    #: shard index -> (pairs, solve_s, degraded); populated from the
    #: workers either at collect time or by a snapshot drain.
    results: dict | None = None
    #: Dispatch-time dead-link view — the survivor graph every route in
    #: this window was chosen against; collect attributes unserved flows
    #: with no path on it to failure (exactly once, never committed).
    down: frozenset = frozenset()


class ShardedReplayEngine:
    """Streaming replay over partitioned relaxation shards.

    The incremental counterpart of :class:`~repro.traces.replay.
    ReplayEngine`: arrivals are *fed* one at a time (the service's
    ``submit``), windows dispatch to shard workers as soon as they close,
    and :meth:`finish` settles everything into one
    :class:`~repro.traces.replay.ReplayReport` with a per-shard
    breakdown.  :meth:`run` wraps feed/finish for whole traces.

    Parameters
    ----------
    topology, power:
        The global fabric and link power model.
    window:
        Epoch length in trace time units.
    partition:
        An explicit :class:`TopologyPartition`; default partitions
        ``topology`` on its natural group boundaries (``num_shards``
        selects the greedy edge cut for unannotated fabrics).
    mode:
        ``"relax"`` (intra-shard F-MCF relaxation + rounding, the paper's
        Algorithm 2 per shard) or ``"greedy"`` (shard-local shortest
        path + density — the deterministic fallback the degrade path and
        the equivalence pins use).
    pipeline_depth:
        Windows in flight; window ``k`` sees the background of windows
        ``<= k - pipeline_depth``.  ``1`` disables overlap and recovers
        the single-owner engine's background semantics.
    background_mode:
        ``"interval"`` (default) ships each shard its restriction of the
        exact piecewise-constant
        :class:`~repro.routing.background.BackgroundProfile`, so shard
        relaxations charge every elementary interval its own background
        slice; ``"mean"`` ships the flat window-averaged vector — the
        retained pre-profile behavior.
    budget:
        Optional :class:`~repro.service.degrade.SolveBudget`; exhausted
        windows degrade to greedy and are counted on the report.
    faults:
        Optional :class:`~repro.sim.churn.FaultSchedule`.  Fabric events
        (link, whole-switch and SRLG outages alike) feed the same
        :class:`~repro.traces.repair.ChurnManager` the single-owner
        engine uses (greedy repair tier only — it is the deterministic
        one under snapshot/restore); ``worker_crash`` events kill the
        named shard worker at the next window dispatch, exercising the
        recovery machinery below.
    failure_domains:
        Optional :class:`~repro.sim.churn.FailureDomain` iterable seeding
        the churn manager's risk-group registry up front (otherwise
        groups are learned from observed domain events).
    srlg_diverse:
        Penalize repair routes sharing a risk group with a currently-down
        domain (see :data:`~repro.traces.repair.SRLG_PENALTY`).  With no
        domains down the replay is bit-identical either way.
    heartbeat_s:
        Bound on each worker collect; a worker silent for this long is
        declared crashed and restarted.  ``None`` waits forever (crashes
        are still detected via pipe EOF).
    max_worker_restarts:
        Consecutive failed recoveries of one shard before giving up
        (successful collects reset the count).
    checkpoint_every:
        Opportunistically snapshot each shard worker's state every this
        many windows (only while the shard is quiescent, i.e. has no
        results in flight); a restarted worker restores the latest
        checkpoint before uncollected windows are resubmitted.  ``None``
        disables checkpoints — recovery then resubmits against fresh
        (cold) worker state, which is slower but loses nothing: committed
        flows live in the parent accountant, never in a worker.
    resync_windows:
        Windows a freshly restarted shard solves greedily (deterministic,
        cheap) while its relaxation state re-warms.
    """

    def __init__(
        self,
        topology: Topology,
        power: PowerModel,
        window: float,
        *,
        partition: TopologyPartition | None = None,
        num_shards: int | None = None,
        mode: str = "relax",
        seed: int = 0,
        fw_max_iterations: int = 60,
        fw_gap_tolerance: float = 1e-3,
        rounding: str = "random",
        pipeline_depth: int = 2,
        background_mode: str = "interval",
        budget: SolveBudget | None = None,
        keep_schedules: bool = False,
        tol: float = 1e-6,
        faults: FaultSchedule | None = None,
        failure_domains: Iterable | None = None,
        srlg_diverse: bool = True,
        heartbeat_s: float | None = None,
        max_worker_restarts: int = 3,
        checkpoint_every: int | None = None,
        resync_windows: int = 2,
    ) -> None:
        if not window > 0:
            raise ValidationError(f"window must be > 0, got {window}")
        if mode not in ("relax", "greedy"):
            raise ValidationError(f"unknown mode {mode!r}")
        if rounding not in ("random", "deterministic"):
            raise ValidationError(f"unknown rounding mode {rounding!r}")
        if background_mode not in ("interval", "mean"):
            raise ValidationError(
                f"unknown background mode {background_mode!r}"
            )
        if pipeline_depth < 1:
            raise ValidationError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        if partition is None:
            partition = partition_topology(topology, num_shards)
        elif partition.topology is not topology:
            raise ValidationError(
                "partition was built for a different topology"
            )
        self._topology = topology
        self._power = power
        self._window = window
        self._partition = partition
        self._mode = mode
        self._seed = seed
        self._fw_iters = fw_max_iterations
        self._fw_gap = fw_gap_tolerance
        self._rounding = rounding
        self._depth = pipeline_depth
        self._background_mode = background_mode
        self._budget = budget
        self._tol = tol
        self._cost = envelope_cost(power)

        if max_worker_restarts < 1:
            raise ValidationError(
                f"max_worker_restarts must be >= 1, got {max_worker_restarts}"
            )
        if resync_windows < 0:
            raise ValidationError(
                f"resync_windows must be >= 0, got {resync_windows}"
            )
        shards = partition.shards
        config = (seed, fw_max_iterations, fw_gap_tolerance, rounding)
        self._group = WorkerGroup(
            lambda i: _ShardSolver(shards[i], power, config), len(shards)
        )
        self._controller = DegradeController(budget)
        self._acct = WindowAccountant(topology, power, tol=tol)
        self._inflight: deque[_InFlight] = deque()
        self._kept: list[FlowSchedule] | None = [] if keep_schedules else None
        self._cross_paths: dict[tuple[str, str], tuple[str, ...]] = {}
        self.window_log: list[WindowStats] = []

        # Fault injection + crash tolerance.
        self._faults = faults
        self._failure_domains = (
            tuple(failure_domains) if failure_domains is not None else None
        )
        self._srlg_diverse = srlg_diverse
        self._heartbeat_s = heartbeat_s
        self._max_worker_restarts = max_worker_restarts
        self._ckpt_every = checkpoint_every
        self._resync = resync_windows
        self._churn: ChurnManager | None = None
        self._stash_events: list[FaultEvent] = []
        self._worker_events: list[FaultEvent] = sorted(
            faults.worker_events() if faults is not None else (),
            key=lambda e: e.time,
        )
        self._worker_event_pos = 0
        n = len(shards)
        #: Per-shard ledger of submitted-but-uncollected window messages
        #: (append at submit, popleft on successful collect) — exactly
        #: what recovery resubmits after a restart.
        self._sent: list[deque] = [deque() for _ in range(n)]
        self._checkpoints: list = [None] * n
        self._last_ckpt = [0] * n
        self._restart_attempts = [0] * n
        self._resync_left = [0] * n
        self._worker_restarts = 0
        #: Shards whose owning switch was down at the last dispatch —
        #: their flows are evacuated to the parent's cross-shard router
        #: and the worker is quiesced; a dark→lit transition triggers the
        #: same greedy resync a restarted worker gets.
        self._dark_prev: frozenset[int] = frozenset()
        self._evacuated_flows = 0
        self._rev_edge_maps = [
            {int(pid): li for li, pid in enumerate(shard.edge_map)}
            for shard in shards
        ]

        # Stream state (established by the first feed).
        self._t0: float | None = None
        self._current = 0
        self._pending: list[Flow] = []
        self._last_release = 0.0
        self._max_deadline = -np.inf
        self._finished = False
        self._closed = False

        # Counters mirroring the single-owner engine's report fields.
        self._flows_seen = 0
        self._flows_served = 0
        self._misses = 0
        self._unserved = 0
        self._volume_offered = 0.0
        self._volume_delivered = 0.0
        self._max_window_arrivals = 0
        self._degraded_windows = 0
        self._per_shard = [
            {"flows": 0, "energy": 0.0, "misses": 0, "degraded": 0,
             "solve_s": 0.0, "evacuated": 0}
            for _ in shards
        ]
        self._cross_stats = {"flows": 0, "energy": 0.0, "misses": 0}

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def partition(self) -> TopologyPartition:
        return self._partition

    @property
    def name(self) -> str:
        label = "Relax" if self._mode == "relax" else "Greedy"
        return f"Sharded+{label}[{self._partition.num_shards}]"

    @property
    def flows_fed(self) -> int:
        return self._flows_seen

    # ------------------------------------------------------------------
    # Streaming admission.
    # ------------------------------------------------------------------
    def feed(self, flow: Flow) -> None:
        """Admit one flow (releases must be nondecreasing)."""
        if self._finished:
            raise ValidationError("engine already finished")
        if self._closed:
            raise ValidationError("engine is closed")
        if self._t0 is None:
            self._t0 = flow.release
            self._last_release = flow.release
            self._pending = [flow]
            self._flows_seen = 1
            self._init_churn()
            return
        if flow.release < self._last_release - 1e-9:
            raise ValidationError(
                f"trace is not sorted by release time: flow {flow.id!r} "
                f"released at {flow.release} after {self._last_release}"
            )
        self._last_release = max(self._last_release, flow.release)
        self._flows_seen += 1
        k = int((flow.release - self._t0) // self._window)
        while k > self._current:
            self._dispatch(self._current, self._pending)
            self._pending = []
            self._current += 1
            if k > self._current:
                self._current = self._next_busy_window(self._current, k)
        self._pending.append(flow)

    def feed_fault(self, event: FaultEvent) -> None:
        """Admit one fault event (same nondecreasing-time stream as flows).

        Link events queue on the churn manager (stashed until the first
        flow fixes the window origin); ``worker_crash`` events join the
        dispatch-time kill schedule.
        """
        if event.kind == WORKER_CRASH:
            if event.shard >= self._partition.num_shards:
                raise ValidationError(
                    f"worker_crash targets shard {event.shard}; partition "
                    f"has {self._partition.num_shards}"
                )
            self._worker_events.append(event)
            self._worker_events.sort(key=lambda e: e.time)
        elif self._churn is None:
            self._stash_events.append(event)
        else:
            self._churn.add_events((event,))

    def _init_churn(self) -> None:
        """Build the churn manager once the window origin is known."""
        churn = ChurnManager(
            self._topology,
            self._power,
            self._acct,
            origin=self._t0,
            window=self._window,
            repair="greedy",  # the snapshot-deterministic tier
            tol=self._tol,
            domains=self._failure_domains,
            srlg_diverse=self._srlg_diverse,
        )
        churn.kept = self._kept
        if self._faults is not None:
            churn.add_events(self._faults.fabric_events())
        if self._stash_events:
            churn.add_events(self._stash_events)
            self._stash_events = []
        churn.apply_upto(self._t0)
        self._churn = churn

    def run(self, trace: Iterable[Flow]) -> ReplayReport:
        """Feed an entire trace and :meth:`finish` — whole-trace sugar.

        The stream may interleave :class:`~repro.sim.churn.FaultEvent`
        items (``TraceReader(path, include_faults=True)``).
        """
        for item in trace:
            if isinstance(item, FaultEvent):
                self.feed_fault(item)
            else:
                self.feed(item)
        return self.finish()

    def _window_bounds(self, k: int) -> tuple[float, float]:
        start = self._t0 + k * self._window
        return start, start + self._window

    def _next_busy_window(self, after: int, upto: int) -> int:
        """Deterministic quiet-gap skip.

        Unlike the single-owner engine this cannot consult the live
        ledger (in-flight windows are not committed yet), so it uses the
        equivalent full-information test: a dispatched flow's span ends
        exactly at its deadline, so windows before ``after`` still carry
        load iff any dispatched deadline lies beyond ``after``'s start.
        A pure function of the fed prefix — the snapshot/restore pins
        rely on that.
        """
        if self._max_deadline > self._t0 + after * self._window:
            return after
        return upto

    # ------------------------------------------------------------------
    # Window dispatch (scatter).
    # ------------------------------------------------------------------
    def _dispatch(self, k: int, arrivals: list[Flow]) -> None:
        # Commit everything old enough that its reservations become
        # visible: the structural pipeline lag.
        while self._inflight and self._inflight[0].index <= k - self._depth:
            self._collect_one()
        start, end = self._window_bounds(k)
        # Enact scheduled worker crashes older than this window, then
        # recover immediately so the submits below reach a live worker.
        self._consume_worker_events(start)
        self._maybe_checkpoint(k)
        # Dark shards: a shard whose switch node is down cannot solve
        # anything meaningful locally — quiesce it (no submits) and
        # evacuate its flows to the parent's survivor-aware cross-shard
        # router.  A dark→lit transition re-warms like a worker restart:
        # the shard solves its next windows greedily while resyncing.
        dark = self._dark_shards()
        for shard_idx in sorted(self._dark_prev - dark):
            self._resync_left[shard_idx] = self._resync
        self._dark_prev = dark
        self._max_window_arrivals = max(
            self._max_window_arrivals, len(arrivals)
        )
        if not arrivals:
            # Bookkeeping-only entry: its collect finalizes the window in
            # commit order (finalizing now would sweep ahead of the
            # still-uncommitted in-flight windows).
            self._inflight.append(
                _InFlight(k, start, end, arrivals=[], assign={}, shard_ids=())
            )
            return
        by_id = {flow.id: flow for flow in arrivals}
        if len(by_id) != len(arrivals):
            raise ValidationError("duplicate flow ids within one window")
        self._volume_offered += sum(flow.size for flow in arrivals)
        for flow in arrivals:
            if flow.deadline > self._max_deadline:
                self._max_deadline = flow.deadline

        assign: dict = {}
        per_shard: dict[int, list[Flow]] = {}
        cross_flows: list[Flow] = []
        for flow in arrivals:
            shard = self._partition.shard_of(flow)
            if shard is None:
                cross_flows.append(flow)
            elif shard in dark:
                self._evacuated_flows += 1
                self._per_shard[shard]["evacuated"] += 1
                cross_flows.append(flow)
            else:
                assign[flow.id] = shard
                per_shard.setdefault(shard, []).append(flow)

        relax = self._mode == "relax"
        if relax and per_shard:
            relax = not self._controller.should_degrade(len(self._inflight))
            if not relax:
                self._degraded_windows += 1
        background = None
        if self._mode == "relax":
            if self._background_mode == "interval":
                background = self._acct.background_profile(start, end)
            else:
                background = self._acct.background(start, end)
        # The dead-link view a window dispatches against changes only at
        # collect boundaries (settle applies events before finalize), so
        # it is structurally lagged like the background — a function of
        # the dispatch/collect schedule, never of worker timing.
        down = self._churn.down_key()
        shard_ids = tuple(sorted(per_shard))
        for shard_idx in shard_ids:
            local_bg = None
            if background is not None:
                edge_map = self._partition.shards[shard_idx].edge_map
                local_bg = (
                    background.restrict(edge_map)
                    if isinstance(background, BackgroundProfile)
                    else background[edge_map]
                )
            rev = self._rev_edge_maps[shard_idx]
            down_local = frozenset(
                rev[pid] for pid in down if pid in rev
            )
            shard_relax = relax
            if self._resync_left[shard_idx] > 0:
                # Degrade-to-greedy while the restarted worker resyncs.
                shard_relax = False
                self._resync_left[shard_idx] -= 1
            self._submit_shard(
                shard_idx,
                (
                    "window",
                    per_shard[shard_idx],
                    local_bg,
                    shard_relax,
                    down_local,
                ),
            )
        # Route cross-shard flows in the parent while the shard solves
        # run; with the async submit above this is the window's overlap.
        cross = self._route_cross(cross_flows, background, down)
        self._inflight.append(
            _InFlight(
                k, start, end, arrivals, assign, shard_ids, cross, relax,
                down=down,
            )
        )

    def _dark_shards(self) -> frozenset[int]:
        """Shards owning a currently-down switch node."""
        switches = self._churn.down_switches
        if not switches:
            return frozenset()
        comp = self._partition.node_component
        return frozenset(
            comp[node][0] for node in switches if node in comp
        )

    def _route_cross(
        self,
        flows: list[Flow],
        background: np.ndarray | BackgroundProfile | None,
        down: frozenset[int],
    ) -> dict:
        """Boundary-aware routing for flows no shard can solve locally.

        With ``down`` nonempty, routes avoid the dead links; a flow with
        no surviving route is omitted (the collect counts it unserved).
        """
        if not flows:
            return {}
        schedules: dict = {}
        if self._mode == "greedy":
            # Static shortest paths: the exact choice GreedyDensityPolicy
            # makes, which is what the equivalence pin compares against.
            for flow in flows:
                key = (flow.src, flow.dst)
                if down:
                    try:
                        path = survivor_shortest_path(
                            self._topology, down, *key
                        )
                    except TopologyError:
                        continue  # no surviving route -> unserved
                else:
                    path = self._cross_paths.get(key)
                    if path is None:
                        path = self._topology.shortest_path(*key)
                        self._cross_paths[key] = path
                schedules[flow.id] = _density_schedule(flow, path)
            return schedules
        # Marginal envelope-cost routing on the global view (the
        # OnlineDensityPolicy machinery).  The router is rebuilt per
        # window: its candidate cache is history-dependent and a restored
        # run must not inherit a different cache than the original.
        router = FastRouter(self._topology)
        ledger = LoadLedger(self._topology, background=background)
        down_idx = np.asarray(sorted(down), dtype=np.int64) if down else None
        for flow in sorted(flows, key=lambda f: (f.release, str(f.id))):
            loads = ledger.loads(flow.release, flow.deadline)
            weights = np.maximum(self._cost.derivative(loads), 1e-12)
            if down_idx is not None:
                weights[down_idx] = DEAD_EDGE_WEIGHT
            router.set_marginal(weights, decreased=True)
            path, edge_ids = router.route(flow.src, flow.dst)
            if down and any(int(eid) in down for eid in edge_ids):
                continue  # no surviving route -> unserved
            ledger.commit(
                edge_ids, flow.release, flow.deadline, flow.density
            )
            schedules[flow.id] = FlowSchedule(
                flow=flow,
                path=path,
                segments=(
                    Segment(
                        start=flow.release,
                        end=flow.deadline,
                        rate=flow.density,
                    ),
                ),
            )
        return schedules

    # ------------------------------------------------------------------
    # Crash tolerance: heartbeat collects, backoff restart, resubmission.
    # ------------------------------------------------------------------
    def _settle(self, end: float) -> None:
        """Apply fault events strictly before ``end``, then finalize.

        The one ordering invariant of the fault model: every finalize is
        preceded by the churn application for the same boundary, so
        repair commitments land before the sweep that prices them.
        """
        self._churn.apply_upto(end)
        self._acct.finalize(end)

    @staticmethod
    def _degrade_msg(msg):
        """Rewrite a window message to the greedy path for resubmission.

        A restarted worker re-solves its uncollected windows; forcing
        them greedy makes recovery deterministic (no warm-start state to
        reproduce) and fast.  The parent entry keeps its original
        ``relax`` flag — the report's degraded counters come from the
        worker's own ``degraded`` result bit, which reflects what
        actually ran.
        """
        return ("window", msg[1], msg[2], False, msg[4])

    def _submit_shard(self, index: int, msg) -> None:
        """Ledger-tracked submit; a dead pipe triggers recovery (which
        resubmits the ledger, including this message)."""
        self._sent[index].append(msg)
        try:
            self._group.submit(index, msg)
        except WorkerCrash:
            self._recover_worker(index)

    def _collect_shard(self, index: int):
        """Collect one window result, restarting the worker on crash or
        heartbeat expiry until it answers (or the restart budget dies)."""
        while True:
            try:
                result = self._group.collect(
                    index, timeout=self._heartbeat_s
                )
            except WorkerCrash:
                self._recover_worker(index)
                continue
            self._restart_attempts[index] = 0
            self._sent[index].popleft()
            return result

    def _recover_worker(self, index: int) -> None:
        """Backoff-restart one shard worker and replay its ledger.

        Restores the latest checkpoint (when one exists), then resubmits
        every submitted-but-uncollected window message degraded to
        greedy.  Committed flows are never at risk — they live in the
        parent accountant; only in-flight window *solves* are redone.
        A crash during recovery itself returns early: the next collect
        raises again and retries with a doubled backoff.
        """
        self._restart_attempts[index] += 1
        if self._restart_attempts[index] > self._max_worker_restarts:
            raise RuntimeError(
                f"shard {index} failed {self._max_worker_restarts} "
                "consecutive restarts; giving up"
            )
        sleep(min(0.02 * 2 ** (self._restart_attempts[index] - 1), 1.0))
        self._group.restart(index)
        self._worker_restarts += 1
        self._resync_left[index] = self._resync
        try:
            blob = self._checkpoints[index]
            if blob is not None:
                self._group.submit(index, ("restore", blob))
                self._group.collect(index, timeout=self._heartbeat_s)
            for msg in self._sent[index]:
                self._group.submit(index, self._degrade_msg(msg))
        except WorkerCrash:
            return

    def _consume_worker_events(self, start: float) -> None:
        """Enact scheduled ``worker_crash`` events older than ``start``.

        Kill-then-recover in one step so the dispatch about to run
        submits to a live worker; the crash still exercises the full
        restart/restore/resubmit path.  (:meth:`inject_worker_crash`
        kills *without* recovering, leaving detection to the next
        collect's heartbeat — the chaos-test variant.)
        """
        events = self._worker_events
        while (
            self._worker_event_pos < len(events)
            and events[self._worker_event_pos].time < start
        ):
            event = events[self._worker_event_pos]
            self._worker_event_pos += 1
            self._group.kill(event.shard)
            self._recover_worker(event.shard)

    def _maybe_checkpoint(self, k: int) -> None:
        """Opportunistic per-shard worker checkpoints.

        Only quiescent shards (no results in flight) snapshot — the
        result pipe is FIFO, so a snapshot request behind pending window
        results would stall the window pipeline to wait for them.
        """
        if self._ckpt_every is None:
            return
        for index in range(self._partition.num_shards):
            if k - self._last_ckpt[index] < self._ckpt_every:
                continue
            if self._group.pending(index) or not self._group.alive(index):
                continue
            try:
                self._group.submit(index, ("snapshot",))
                blob = self._group.collect(
                    index, timeout=self._heartbeat_s
                )
            except WorkerCrash:
                self._recover_worker(index)
                continue
            self._checkpoints[index] = blob
            self._last_ckpt[index] = k

    def inject_worker_crash(self, index: int) -> None:
        """Kill one shard worker mid-replay, with no recovery action.

        The next collect touching the shard sees the dead pipe (or
        heartbeat expiry), restarts it, and resubmits its uncollected
        windows — the zero-lost-flows guarantee the chaos tests pin.
        """
        if not 0 <= index < self._partition.num_shards:
            raise ValidationError(
                f"no shard {index}; partition has "
                f"{self._partition.num_shards}"
            )
        self._group.kill(index)

    # ------------------------------------------------------------------
    # Window collect (gather + commit).
    # ------------------------------------------------------------------
    def _collect_one(self) -> None:
        # Peek, don't pop: if a collect below dies hard (restart budget
        # exhausted) the entry stays in flight for error reporting.
        entry = self._inflight[0]
        if not entry.arrivals:
            self._inflight.popleft()
            self._settle(entry.end)
            return
        results = entry.results
        if results is None:
            results = {
                shard_idx: self._collect_shard(shard_idx)
                for shard_idx in entry.shard_ids
            }
            entry.results = results
        self._inflight.popleft()
        path_of: dict = {}
        window_solve = 0.0
        for shard_idx in entry.shard_ids:
            pairs, solve_s, degraded = results[shard_idx]
            stats = self._per_shard[shard_idx]
            stats["solve_s"] += solve_s
            if degraded and self._mode == "relax":
                stats["degraded"] += 1
            if solve_s > window_solve:
                window_solve = solve_s
            for flow_id, path in pairs:
                path_of[flow_id] = path

        served = 0
        misses = 0
        served_ids: set = set()
        # Commit in arrival order regardless of which shard answered:
        # the exact float-accumulation order of the single-owner engine.
        for flow in entry.arrivals:
            shard_idx = entry.assign.get(flow.id)
            if shard_idx is None:
                fs = entry.cross.get(flow.id)
            else:
                if flow.id not in path_of:
                    raise ValidationError(
                        f"shard {shard_idx} returned no result for flow "
                        f"{flow.id!r} in window {entry.index}"
                    )
                path = path_of[flow.id]
                # ``None`` path: no surviving route past the dead links.
                fs = None if path is None else _density_schedule(flow, path)
            if fs is None:
                continue
            in_span, delivered, missed = flow_verdict(fs, flow, self._tol)
            if not in_span:
                raise ValidationError(
                    f"{self.name}: flow {flow.id!r} scheduled outside "
                    "its span"
                )
            served += 1
            served_ids.add(flow.id)
            self._flows_served += 1
            self._volume_delivered += delivered
            if missed:
                misses += 1
                self._misses += 1
            n_edges = len(fs.path) - 1
            standalone = sum(
                self._power.mu
                * seg.rate**self._power.alpha
                * (seg.end - seg.start)
                for seg in fs.segments
            ) * n_edges
            if shard_idx is None:
                self._cross_stats["flows"] += 1
                self._cross_stats["energy"] += standalone
                if missed:
                    self._cross_stats["misses"] += 1
            else:
                stats = self._per_shard[shard_idx]
                stats["flows"] += 1
                stats["energy"] += standalone
                if missed:
                    stats["misses"] += 1
            self._acct.commit(fs)
            self._churn.register(flow, fs, missed)
            if self._kept is not None:
                self._kept.append(fs)
        n_unserved = len(entry.arrivals) - served
        self._unserved += n_unserved
        if n_unserved and entry.down:
            # Attribute never-committed arrivals with no survivor route
            # on the dispatch-time dead-link view — exactly once, and
            # disjoint from the committed-then-doomed set the churn
            # manager attributes itself (mirrors the single-owner
            # engine's schedule-time attribution).
            for flow in entry.arrivals:
                if flow.id not in served_ids and self._churn.unreachable(
                    flow.src, flow.dst, entry.down
                ):
                    self._churn.misses_attributed += 1
        self._settle(entry.end)
        if entry.shard_ids and self._mode == "relax":
            self._controller.observe(window_solve, not entry.relax)
        self.window_log.append(
            WindowStats(
                index=entry.index,
                start=entry.start,
                end=entry.end,
                arrivals=len(entry.arrivals),
                served=served,
                misses=misses,
                cross_flows=len(entry.cross),
                degraded=not entry.relax,
                solve_s=window_solve,
            )
        )

    # ------------------------------------------------------------------
    # Settlement.
    # ------------------------------------------------------------------
    def finish(self) -> ReplayReport:
        """Dispatch the final window, drain every shard, build the report."""
        if self._t0 is None:
            raise ValidationError("trace produced no flows")
        if self._finished:
            raise ValidationError("engine already finished")
        self._dispatch(self._current, self._pending)
        self._pending = []
        while self._inflight:
            self._collect_one()
        self._finished = True

        acct = self._acct
        current = self._current + 1
        # Trailing sweep over still-transmitting reservations: everything
        # is committed now, so this mirrors the single-owner engine's
        # epilogue verbatim (same window arithmetic, same skip rule).
        churn = self._churn
        while acct.has_live or churn.has_pending:
            next_t = acct.next_live_start(self._t0 + current * self._window)
            if next_t is not None:
                current = max(
                    current,
                    min(1 << 62, int((next_t - self._t0) // self._window)),
                )
            elif not acct.has_live:
                # Only fault events remain; one jump settles them all.
                current = 1 << 62
            self._settle(self._window_bounds(current)[1])
            current += 1
        churn.flush()
        acct.drain()

        drift = 0.0
        if self._mode == "relax":
            drift = max(self._group.broadcast(("drift",)), default=0.0)

        t1 = (
            acct.last_segment_end
            if acct.last_segment_end > self._t0
            else self._last_release
        )
        shard_stats = []
        for shard, stats in zip(self._partition.shards, self._per_shard):
            shard_stats.append(
                ShardStats(
                    shard=f"shard{shard.index}[{'+'.join(shard.groups)}]",
                    flows=stats["flows"],
                    energy=stats["energy"],
                    misses=stats["misses"],
                    degraded_windows=stats["degraded"],
                    solve_s=stats["solve_s"],
                    evacuated=stats["evacuated"],
                )
            )
        shard_stats.append(
            ShardStats(
                shard="cross-shard",
                flows=self._cross_stats["flows"],
                energy=self._cross_stats["energy"],
                misses=self._cross_stats["misses"],
                degraded_windows=0,
                solve_s=0.0,
            )
        )
        return ReplayReport(
            policy=self.name,
            window=self._window,
            windows=current,
            horizon=(self._t0, t1),
            flows_seen=self._flows_seen,
            flows_served=self._flows_served,
            deadline_misses=self._misses + churn.extra_misses,
            unserved=self._unserved,
            volume_offered=self._volume_offered,
            volume_delivered=self._volume_delivered + churn.delivered_delta,
            idle_energy=acct.idle_energy(self._t0, t1),
            dynamic_energy=acct.dynamic_energy,
            active_links=len(acct.active_links),
            peak_link_rate=acct.peak_rate,
            capacity_violations=acct.capacity_violations,
            policy_fallbacks=0,
            max_resident_segments=acct.max_resident,
            max_window_arrivals=self._max_window_arrivals,
            max_weight_drift=float(drift),
            degraded_windows=self._degraded_windows,
            link_failures=churn.link_downs,
            link_recoveries=churn.link_ups,
            flows_rerouted=churn.flows_rerouted,
            repair_energy_delta=churn.repair_energy_delta,
            time_to_recover=churn.time_to_recover,
            misses_attributed_to_failure=churn.misses_attributed,
            domain_failures=churn.domain_failures,
            domain_recoveries=churn.domain_recoveries,
            total_recovery_time=churn.total_recovery_time,
            repairs_triaged=churn.repairs_triaged,
            evacuated_flows=self._evacuated_flows,
            worker_restarts=self._worker_restarts,
            shard_stats=tuple(shard_stats),
            schedules=self._kept,
        )

    def close(self) -> None:
        """Stop the shard workers (idempotent, exception-safe).

        Safe to call repeatedly and from ``__exit__`` after a
        :meth:`finish` that raised mid-collect: the group reaps each
        fork worker exactly once and tolerates already-dead pipes, so no
        child process leaks whichever way the replay ended.
        """
        self._closed = True
        self._group.close()

    def __enter__(self) -> "ShardedReplayEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Snapshot / restore.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Freeze the mid-replay state into one picklable payload.

        Worker *results* for in-flight windows are drained into their
        entries (so worker state is quiescent and snapshotable) but NOT
        committed — the restored engine replays the identical
        dispatch/collect schedule, which is what keeps its lagged
        background views, and hence every report field, bit-identical to
        an uninterrupted run.
        """
        if self._finished or self._closed:
            raise ValidationError("cannot snapshot a finished engine")
        for entry in self._inflight:
            if entry.results is None and entry.shard_ids:
                # _collect_shard (not a bare collect) so the resubmission
                # ledger drains too — a snapshot holds results, never
                # uncollected sends.
                entry.results = {
                    shard_idx: self._collect_shard(shard_idx)
                    for shard_idx in entry.shard_ids
                }
        workers = self._group.broadcast(("snapshot",))
        return {
            "kind": SNAPSHOT_KIND,
            "version": SNAPSHOT_VERSION,
            "config": {
                "window": self._window,
                "num_shards": self._partition.num_shards,
                "mode": self._mode,
                "seed": self._seed,
                "fw_max_iterations": self._fw_iters,
                "fw_gap_tolerance": self._fw_gap,
                "rounding": self._rounding,
                "pipeline_depth": self._depth,
                "background_mode": self._background_mode,
                "budget": self._budget,
                "keep_schedules": self._kept is not None,
                "tol": self._tol,
                "heartbeat_s": self._heartbeat_s,
                "max_worker_restarts": self._max_worker_restarts,
                "checkpoint_every": self._ckpt_every,
                "resync_windows": self._resync,
                "failure_domains": self._failure_domains,
                "srlg_diverse": self._srlg_diverse,
                "topology_name": self._topology.name,
                "num_edges": self._topology.num_edges,
            },
            "stream": {
                "t0": self._t0,
                "current": self._current,
                "pending": list(self._pending),
                "last_release": self._last_release,
                "max_deadline": self._max_deadline,
            },
            "counters": {
                "flows_seen": self._flows_seen,
                "flows_served": self._flows_served,
                "misses": self._misses,
                "unserved": self._unserved,
                "volume_offered": self._volume_offered,
                "volume_delivered": self._volume_delivered,
                "max_window_arrivals": self._max_window_arrivals,
                "degraded_windows": self._degraded_windows,
                "per_shard": [dict(s) for s in self._per_shard],
                "cross": dict(self._cross_stats),
            },
            "controller": self._controller.snapshot_state(),
            "acct": self._acct.snapshot_state(),
            "inflight": list(self._inflight),
            "window_log": list(self.window_log),
            "kept": self._kept,
            "workers": workers,
            "churn": (
                self._churn.snapshot_state()
                if self._churn is not None
                else None
            ),
            "service_churn": {
                "stash_events": list(self._stash_events),
                "worker_events": self._worker_events[
                    self._worker_event_pos:
                ],
                "worker_restarts": self._worker_restarts,
                "restart_attempts": list(self._restart_attempts),
                "resync_left": list(self._resync_left),
                "checkpoints": list(self._checkpoints),
                "last_ckpt": list(self._last_ckpt),
                "dark_prev": sorted(self._dark_prev),
                "evacuated_flows": self._evacuated_flows,
            },
        }

    @classmethod
    def restore_state(
        cls,
        topology: Topology,
        power: PowerModel,
        state: dict,
        *,
        partition: TopologyPartition | None = None,
    ) -> "ShardedReplayEngine":
        """Rebuild a mid-replay engine from :meth:`snapshot_state`.

        ``topology`` and ``power`` are re-supplied by the caller (the
        snapshot stores only their fingerprint); a custom partition used
        at snapshot time must be re-supplied too — the default
        re-derives the deterministic natural/greedy partition.
        """
        if not isinstance(state, dict) or state.get("kind") != SNAPSHOT_KIND:
            raise ValidationError("not a sharded replay snapshot")
        if state.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported snapshot version {state.get('version')!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        cfg = state["config"]
        if topology.num_edges != cfg["num_edges"]:
            raise ValidationError(
                f"snapshot was taken on {cfg['topology_name']!r} "
                f"({cfg['num_edges']} edges); got {topology.name!r} "
                f"({topology.num_edges} edges)"
            )
        engine = cls(
            topology,
            power,
            cfg["window"],
            partition=partition,
            num_shards=cfg["num_shards"],
            mode=cfg["mode"],
            seed=cfg["seed"],
            fw_max_iterations=cfg["fw_max_iterations"],
            fw_gap_tolerance=cfg["fw_gap_tolerance"],
            rounding=cfg["rounding"],
            pipeline_depth=cfg["pipeline_depth"],
            background_mode=cfg["background_mode"],
            budget=cfg["budget"],
            keep_schedules=cfg["keep_schedules"],
            tol=cfg["tol"],
            heartbeat_s=cfg["heartbeat_s"],
            max_worker_restarts=cfg["max_worker_restarts"],
            checkpoint_every=cfg["checkpoint_every"],
            resync_windows=cfg["resync_windows"],
            failure_domains=cfg["failure_domains"],
            srlg_diverse=cfg["srlg_diverse"],
        )
        if engine._partition.num_shards != cfg["num_shards"]:
            raise ValidationError(
                f"partition yields {engine._partition.num_shards} shards; "
                f"snapshot had {cfg['num_shards']}"
            )
        for index, blob in enumerate(state["workers"]):
            engine._group.submit(index, ("restore", blob))
        for index in range(len(state["workers"])):
            engine._group.collect(index)
        stream = state["stream"]
        engine._t0 = stream["t0"]
        engine._current = stream["current"]
        engine._pending = list(stream["pending"])
        engine._last_release = stream["last_release"]
        engine._max_deadline = stream["max_deadline"]
        counters = state["counters"]
        engine._flows_seen = counters["flows_seen"]
        engine._flows_served = counters["flows_served"]
        engine._misses = counters["misses"]
        engine._unserved = counters["unserved"]
        engine._volume_offered = counters["volume_offered"]
        engine._volume_delivered = counters["volume_delivered"]
        engine._max_window_arrivals = counters["max_window_arrivals"]
        engine._degraded_windows = counters["degraded_windows"]
        engine._per_shard = [dict(s) for s in counters["per_shard"]]
        engine._cross_stats = dict(counters["cross"])
        engine._controller.restore_state(state["controller"])
        engine._acct.restore_state(state["acct"])
        engine._inflight = deque(state["inflight"])
        engine.window_log = list(state["window_log"])
        engine._kept = state["kept"]
        if engine._t0 is not None and state["churn"] is not None:
            # Rebuild on the restored accountant, then overwrite with the
            # snapshotted fault state (events, down set, live registry).
            engine._init_churn()
            engine._churn.restore_state(state["churn"])
            engine._churn.kept = engine._kept
        sc = state["service_churn"]
        engine._stash_events = list(sc["stash_events"])
        engine._worker_events = list(sc["worker_events"])
        engine._worker_event_pos = 0
        engine._worker_restarts = sc["worker_restarts"]
        engine._restart_attempts = list(sc["restart_attempts"])
        engine._resync_left = list(sc["resync_left"])
        engine._checkpoints = list(sc["checkpoints"])
        engine._last_ckpt = list(sc["last_ckpt"])
        engine._dark_prev = frozenset(sc["dark_prev"])
        engine._evacuated_flows = sc["evacuated_flows"]
        return engine


def _density_schedule(flow: Flow, path: tuple[str, ...]) -> FlowSchedule:
    """Full-span density schedule — every sharded commitment's shape."""
    return FlowSchedule(
        flow=flow,
        path=path,
        segments=(
            Segment(start=flow.release, end=flow.deadline, rate=flow.density),
        ),
    )
