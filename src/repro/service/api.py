"""The long-lived replay service: streaming admission over sharded replay.

:class:`ReplayService` is the operational wrapper around
:class:`~repro.service.sharded.ShardedReplayEngine`: flows are admitted
one at a time (:meth:`~ReplayService.submit`) or streamed straight from a
trace file (:meth:`~ReplayService.serve_trace`), per-window telemetry is
exposed incrementally (:meth:`~ReplayService.poll`), and the whole
mid-replay state — shard relaxation pipelines, the commitment ledger, the
degrade controller, *and the trace-store cursor* — round-trips through
:meth:`~ReplayService.snapshot`/:meth:`~ReplayService.restore`, so a
service killed mid-trace resumes exactly where it stopped and finishes
with the identical report.

Typical lifecycle::

    service = ReplayService(topology, power, window=4.0, num_shards=4)
    service.serve_trace("trace.jsonl", limit=5_000)
    for stats in service.poll():
        print(stats.describe())
    blob = service.snapshot()          # durable checkpoint (bytes)
    ...
    service = ReplayService.restore(topology, power, blob)
    service.resume_trace()             # picks up at the stored cursor
    report = service.drain()
"""

from __future__ import annotations

import pickle

from repro.errors import ValidationError
from repro.flows.flow import Flow
from repro.power.model import PowerModel
from repro.service.partition import TopologyPartition
from repro.service.sharded import ShardedReplayEngine, WindowStats
from repro.topology.base import Topology
from repro.traces.replay import ReplayReport
from repro.traces.store import TraceReader

__all__ = ["ReplayService"]

_SERVICE_KIND = "repro-replay-service"
_SERVICE_VERSION = 1


class ReplayService:
    """Streaming flow admission with snapshot/restore and backpressure.

    All keyword arguments are forwarded to
    :class:`~repro.service.sharded.ShardedReplayEngine` (``num_shards``,
    ``mode``, ``pipeline_depth``, ``budget``, ...).
    """

    def __init__(
        self,
        topology: Topology,
        power: PowerModel,
        window: float,
        **engine_kwargs,
    ) -> None:
        self._engine = ShardedReplayEngine(
            topology, power, window, **engine_kwargs
        )
        self._poll_cursor = 0
        self._trace_path: str | None = None
        self._trace_cursor: int | None = None

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    def submit(self, flow: Flow) -> None:
        """Admit one flow (releases must be nondecreasing)."""
        self._engine.feed(flow)

    def submit_many(self, flows) -> int:
        """Admit an iterable of flows; returns how many were admitted."""
        count = 0
        for flow in flows:
            self._engine.feed(flow)
            count += 1
        return count

    def submit_fault(self, event) -> None:
        """Admit one :class:`~repro.sim.churn.FaultEvent` inline."""
        self._engine.feed_fault(event)

    def inject_worker_crash(self, index: int) -> None:
        """Kill one shard worker now; the next collect recovers it."""
        self._engine.inject_worker_crash(index)

    def serve_trace(self, path: str, limit: int | None = None) -> int:
        """Stream flows from a JSONL trace file, tracking a resume cursor.

        Admits up to ``limit`` flows (all of them when None) and records
        the byte cursor of the next unread flow after every admission,
        so a :meth:`snapshot` taken at any point carries an exact resume
        position.  Returns the number of flows admitted by this call.
        """
        count = 0
        with TraceReader(path) as reader:
            if self._trace_path == path and self._trace_cursor is not None:
                reader.seek(self._trace_cursor)
            for flow in reader:
                self._engine.feed(flow)
                count += 1
                self._trace_path = path
                self._trace_cursor = reader.tell()
                if limit is not None and count >= limit:
                    break
        return count

    def resume_trace(self, limit: int | None = None) -> int:
        """Continue :meth:`serve_trace` from the stored cursor."""
        if self._trace_path is None:
            raise ValidationError(
                "no trace cursor to resume; call serve_trace first"
            )
        return self.serve_trace(self._trace_path, limit=limit)

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------
    def poll(self) -> list[WindowStats]:
        """Per-window stats settled since the last poll (oldest first)."""
        log = self._engine.window_log
        fresh = log[self._poll_cursor :]
        self._poll_cursor = len(log)
        return fresh

    @property
    def flows_submitted(self) -> int:
        return self._engine.flows_fed

    @property
    def partition(self) -> TopologyPartition:
        return self._engine.partition

    def describe(self) -> str:
        return (
            f"{self._engine.name}: {self._engine.flows_fed} flows "
            f"submitted, {self._engine.partition.describe()}"
        )

    # ------------------------------------------------------------------
    # Settlement.
    # ------------------------------------------------------------------
    def drain(self) -> ReplayReport:
        """Settle every in-flight window, stop the shard workers, report."""
        try:
            return self._engine.finish()
        finally:
            self._engine.close()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "ReplayService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Snapshot / restore.
    # ------------------------------------------------------------------
    def snapshot(self, path: str | None = None) -> bytes | str:
        """Checkpoint the full service state.

        Returns the pickled payload as bytes, or writes it to ``path``
        and returns the path.  Covers the engine (shard pipelines,
        commitment ledger, in-flight windows, degrade controller), the
        poll cursor, and the trace-store cursor.
        """
        payload = {
            "kind": _SERVICE_KIND,
            "version": _SERVICE_VERSION,
            "engine": self._engine.snapshot_state(),
            "poll_cursor": self._poll_cursor,
            "trace": {"path": self._trace_path, "cursor": self._trace_cursor},
        }
        blob = pickle.dumps(payload)
        if path is None:
            return blob
        with open(path, "wb") as handle:
            handle.write(blob)
        return path

    @classmethod
    def restore(
        cls,
        topology: Topology,
        power: PowerModel,
        source: bytes | str,
        *,
        partition: TopologyPartition | None = None,
    ) -> "ReplayService":
        """Rebuild a service from :meth:`snapshot` bytes or a file path."""
        if isinstance(source, (bytes, bytearray)):
            blob = bytes(source)
        else:
            with open(source, "rb") as handle:
                blob = handle.read()
        payload = pickle.loads(blob)
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != _SERVICE_KIND
        ):
            raise ValidationError("not a replay service snapshot")
        if payload.get("version") != _SERVICE_VERSION:
            raise ValidationError(
                f"unsupported service snapshot version "
                f"{payload.get('version')!r} (expected {_SERVICE_VERSION})"
            )
        service = cls.__new__(cls)
        service._engine = ShardedReplayEngine.restore_state(
            topology, power, payload["engine"], partition=partition
        )
        service._poll_cursor = payload["poll_cursor"]
        service._trace_path = payload["trace"]["path"]
        service._trace_cursor = payload["trace"]["cursor"]
        return service
