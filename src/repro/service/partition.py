"""Topology partitioning for the sharded streaming-replay service.

A partition splits the fabric into *shards* along its natural locality
boundaries — fat-tree pods and leaf-spine leaves, read from
:attr:`~repro.topology.base.Topology.node_groups` — or, for fabrics
without annotated groups (jellyfish, random graphs), along a greedy
balanced edge cut grown by multi-source BFS.  Each shard is a real
:class:`~repro.topology.base.Topology` (the induced subgraph on the
shard's nodes), so the whole relaxation stack runs on it unchanged; an
``edge_map`` translates shard-local edge ids back to the parent's dense
edge-id space, which is how per-shard background-load vectors and the
parent's global commitment ledger exchange state.

Links that belong to no shard (pod-to-core, leaf-to-spine, cut edges)
form the **boundary-link set**: the only part of the fabric on which
shards can interact.  A flow whose endpoints share a shard *and* a
connected component of that shard's subgraph is *intra-shard* — it can be
solved locally, it can never load a boundary link.  Every other flow is
*cross-shard* and must be routed on the boundary-aware global view.

When the requested shard count is smaller than the number of natural
groups, whole groups are merged greedily into host-balanced shards; a
merged shard's subgraph may then be disconnected (two fat-tree pods only
meet at the core), which is why intra-shard assignment checks components,
not just shard membership.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.flows.flow import Flow
from repro.topology.base import HOST, Topology

__all__ = ["Shard", "TopologyPartition", "partition_topology"]


@dataclass(frozen=True)
class Shard:
    """One partition cell: an induced sub-topology plus its id mappings.

    Attributes
    ----------
    index:
        Position of this shard in the partition (dense, from 0).
    topology:
        The induced subgraph on the shard's nodes, as a standalone
        :class:`Topology` (host/switch kinds preserved).  May be
        disconnected when natural groups were merged.
    groups:
        The natural group labels merged into this shard (one label for
        greedy-cut shards).
    edge_map:
        ``int64[shard.topology.num_edges]`` — shard-local edge id to
        parent edge id.  ``parent_vector[edge_map]`` restricts any dense
        per-edge vector to this shard.
    """

    index: int
    topology: Topology
    groups: tuple[str, ...]
    edge_map: np.ndarray = field(repr=False)

    @property
    def num_hosts(self) -> int:
        return len(self.topology.hosts)


@dataclass(frozen=True)
class TopologyPartition:
    """A sharding of one topology, with flow-to-shard assignment.

    ``node_component`` maps every sharded node to its
    ``(shard index, component index)`` — backbone nodes are absent.  Two
    endpoints solve locally iff they map to the same pair.
    """

    topology: Topology
    shards: tuple[Shard, ...]
    #: Parent edge ids of links in no shard (pod-core / leaf-spine / cut
    #: links) — the only links on which shards interact.
    boundary_edge_ids: np.ndarray = field(repr=False)
    node_component: dict[str, tuple[int, int]] = field(repr=False)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, flow: Flow) -> int | None:
        """The shard that can solve ``flow`` locally, else None.

        Local solvability requires both endpoints in the same connected
        component of one shard's subgraph; everything else (backbone
        endpoints, merged-but-disconnected pods) is cross-shard.
        """
        src = self.node_component.get(flow.src)
        if src is None:
            return None
        return src[0] if src == self.node_component.get(flow.dst) else None

    def describe(self) -> str:
        """One-line human summary used by reports and examples."""
        sizes = ", ".join(
            f"{s.num_hosts}h/{s.topology.num_edges}e" for s in self.shards
        )
        return (
            f"{self.num_shards} shards ({sizes}), "
            f"{len(self.boundary_edge_ids)} boundary links"
        )


def _natural_groups(topology: Topology) -> dict[str, list[str]]:
    """Group label -> sorted member nodes, from topology metadata."""
    members: dict[str, list[str]] = {}
    for node in topology.nodes:  # sorted, so member lists are sorted
        label = topology.node_groups.get(node)
        if label is not None:
            members.setdefault(label, []).append(node)
    return members


def _greedy_edge_cut(
    topology: Topology, num_shards: int
) -> dict[str, list[str]]:
    """Balanced multi-source BFS regions for unannotated fabrics.

    Seeds are hosts spread evenly through the sorted host list; regions
    claim unclaimed neighbors one frontier layer per round, in region
    order, which keeps them connected and roughly host-balanced without
    any randomness.  Edges between regions become boundary links.
    """
    hosts = topology.hosts
    if num_shards > len(hosts):
        raise ValidationError(
            f"cannot cut {len(hosts)} hosts into {num_shards} shards"
        )
    seeds = [
        hosts[(i * len(hosts)) // num_shards] for i in range(num_shards)
    ]
    owner: dict[str, int] = {seed: r for r, seed in enumerate(seeds)}
    # Round-robin, one claim per region per turn: regions stay connected
    # (every claim is adjacent to the region) and balanced to within one
    # node until a region's reachable space runs out.
    queues: list[deque[str]] = [deque([seed]) for seed in seeds]
    progressed = True
    while progressed:
        progressed = False
        for region in range(num_shards):
            queue = queues[region]
            while queue:
                node = queue[0]
                unclaimed = next(
                    (
                        nbr
                        for nbr in sorted(topology.neighbors(node))
                        if nbr not in owner
                    ),
                    None,
                )
                if unclaimed is None:
                    queue.popleft()
                    continue
                owner[unclaimed] = region
                queue.append(unclaimed)
                progressed = True
                break
    groups: dict[str, list[str]] = {
        f"cut{r:02d}": [] for r in range(num_shards)
    }
    for node in topology.nodes:
        region = owner.get(node)
        if region is not None:
            groups[f"cut{region:02d}"].append(node)
    return {label: nodes for label, nodes in groups.items() if nodes}


def _merge_groups(
    groups: dict[str, list[str]], num_shards: int
) -> list[tuple[tuple[str, ...], list[str]]]:
    """Merge natural groups into ``num_shards`` host-balanced bins.

    Groups are taken largest-first and always land in the currently
    lightest bin (greedy balanced partition); bin order follows each
    bin's first group label so the result is deterministic.
    """
    labels = sorted(groups, key=lambda g: (-len(groups[g]), g))
    bins: list[list[str]] = [[] for _ in range(num_shards)]
    weights = [0] * num_shards
    for label in labels:
        lightest = min(range(num_shards), key=lambda b: (weights[b], b))
        bins[lightest].append(label)
        weights[lightest] += len(groups[label])
    merged = []
    for bin_labels in bins:
        bin_labels.sort()
        nodes = sorted(n for label in bin_labels for n in groups[label])
        merged.append((tuple(bin_labels), nodes))
    merged.sort(key=lambda entry: entry[0])
    return merged


def _components(topology: Topology) -> dict[str, int]:
    """Node -> connected-component index (deterministic BFS labelling)."""
    component: dict[str, int] = {}
    next_id = 0
    for node in topology.nodes:
        if node in component:
            continue
        component[node] = next_id
        frontier = [node]
        while frontier:
            nxt: list[str] = []
            for cur in frontier:
                for nbr in sorted(topology.neighbors(cur)):
                    if nbr not in component:
                        component[nbr] = next_id
                        nxt.append(nbr)
            frontier = nxt
        next_id += 1
    return component


def partition_topology(
    topology: Topology, num_shards: int | None = None
) -> TopologyPartition:
    """Split ``topology`` into shards along its natural boundaries.

    Parameters
    ----------
    topology:
        The fabric to shard.  Fabrics with
        :attr:`~repro.topology.base.Topology.node_groups` metadata
        (fat-tree pods, leaf-spine leaves) split on those groups; others
        fall back to the greedy BFS edge cut, which requires
        ``num_shards``.
    num_shards:
        Desired shard count.  None keeps one shard per natural group.
        Fewer shards than groups merges whole groups (host-balanced);
        more shards than groups is capped at the group count (a natural
        group is never split).
    """
    if num_shards is not None and num_shards < 1:
        raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
    groups = _natural_groups(topology)
    if groups:
        if num_shards is None or num_shards >= len(groups):
            merged = [
                ((label,), sorted(groups[label])) for label in sorted(groups)
            ]
        else:
            merged = _merge_groups(groups, num_shards)
    else:
        if num_shards is None:
            raise ValidationError(
                f"topology {topology.name!r} has no natural group metadata; "
                "pass num_shards for the greedy edge-cut fallback"
            )
        cut = _greedy_edge_cut(topology, num_shards)
        merged = [((label,), sorted(cut[label])) for label in sorted(cut)]

    shards: list[Shard] = []
    node_component: dict[str, tuple[int, int]] = {}
    sharded_edges: set[int] = set()
    for index, (labels, nodes) in enumerate(merged):
        node_set = set(nodes)
        subgraph = topology.graph.subgraph(node_set).copy()
        sub = Topology(
            subgraph,
            name=f"{topology.name}/shard{index}",
            groups={
                n: topology.node_groups[n]
                for n in nodes
                if n in topology.node_groups
            },
        )
        edge_map = np.asarray(
            [topology.edge_id(edge) for edge in sub.edges], dtype=np.int64
        )
        sharded_edges.update(edge_map.tolist())
        for node, comp in _components(sub).items():
            node_component[node] = (index, comp)
        shards.append(
            Shard(index=index, topology=sub, groups=labels, edge_map=edge_map)
        )

    boundary = np.asarray(
        [
            eid
            for eid in range(topology.num_edges)
            if eid not in sharded_edges
        ],
        dtype=np.int64,
    )
    if not shards:  # unreachable: every branch above yields >= 1 bin
        raise TopologyError(f"partitioning {topology.name!r} produced no shards")
    return TopologyPartition(
        topology=topology,
        shards=tuple(shards),
        boundary_edge_ids=boundary,
        node_component=node_component,
    )
