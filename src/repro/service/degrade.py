"""Backpressure for the replay service: degrade before falling behind.

A serving stack cannot let one expensive window stall the admission
pipeline, so the service carries a *solve budget*: when the relaxation
falls behind it, subsequent windows skip Relax+Round and fall back to
Greedy+Density — the load-oblivious O(path) policy that always keeps up
— until the backlog clears.  Degradation is **recorded honestly**: every
degraded window is counted on the report
(:attr:`~repro.traces.replay.ReplayReport.degraded_windows`), per shard
in the breakdown, and flagged on the per-window stats the service's
``poll()`` returns, so a cheap run can never masquerade as a Relax+Round
run.

Two triggers, both optional:

* ``per_window_s`` — the previous relaxation window took longer than
  this wall-clock budget.  Recovery is by probing: the degraded (greedy)
  window is fast, so the next window tries the relaxation again; a
  persistently slow fabric therefore alternates solve/degrade instead of
  drifting unboundedly behind the arrival stream.
* ``max_in_flight`` — more than this many windows are already dispatched
  and uncollected (the pipeline is backing up).  ``0`` degrades every
  window: the deterministic "greedy only" stance used by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["SolveBudget", "DegradeController"]


@dataclass(frozen=True)
class SolveBudget:
    """Per-window solve budget; ``None`` fields disable that trigger."""

    per_window_s: float | None = None
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if self.per_window_s is not None and self.per_window_s < 0:
            raise ValidationError(
                f"per_window_s must be >= 0, got {self.per_window_s}"
            )
        if self.max_in_flight is not None and self.max_in_flight < 0:
            raise ValidationError(
                f"max_in_flight must be >= 0, got {self.max_in_flight}"
            )


class DegradeController:
    """Tracks solve pressure and decides each window's fallback.

    The controller is consulted at *dispatch* time (before the window's
    own cost is known) and observes measured solve times at *collect*
    time — with window pipelining the freshest observation is therefore
    one pipeline depth old, which is exactly the staleness a real
    admission controller lives with.
    """

    def __init__(self, budget: SolveBudget | None) -> None:
        self._budget = budget
        self._over_budget = False
        self.degraded_windows = 0
        self.relaxed_windows = 0

    def should_degrade(self, in_flight: int) -> bool:
        """Decide window fate given the current dispatch queue depth."""
        budget = self._budget
        if budget is None:
            return False
        if (
            budget.max_in_flight is not None
            and in_flight > budget.max_in_flight
        ):
            return True
        return self._over_budget

    def observe(self, solve_s: float, degraded: bool) -> None:
        """Feed back one collected window's measured solve time."""
        if degraded:
            self.degraded_windows += 1
            # Greedy windows are cheap by construction; clear the flag so
            # the next dispatch probes the relaxation again.
            self._over_budget = False
            return
        self.relaxed_windows += 1
        budget = self._budget
        self._over_budget = (
            budget is not None
            and budget.per_window_s is not None
            and solve_s > budget.per_window_s
        )

    # ------------------------------------------------------------------
    # Snapshot plumbing.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "over_budget": self._over_budget,
            "degraded_windows": self.degraded_windows,
            "relaxed_windows": self.relaxed_windows,
        }

    def restore_state(self, state: dict) -> None:
        self._over_budget = state["over_budget"]
        self.degraded_windows = state["degraded_windows"]
        self.relaxed_windows = state["relaxed_windows"]
