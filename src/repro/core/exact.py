"""Exact DCFSR by exhaustive path-assignment enumeration (tiny instances).

DCFSR = (choose a path per flow) + (DCFS on the chosen paths).  Since
Most-Critical-First solves the inner DCFS optimally under the paper's
virtual-circuit model, enumerating path assignments and taking the best
energy yields the exact optimum for that model.  Exponential, of course —
this exists to

* empirically verify the Theorem 2 / Theorem 3 reduction arithmetic, and
* measure Random-Schedule's true approximation ratio on small instances.

For the reductions' *unit-time parallel-link* instances we also provide
:func:`exact_parallel_assignment_energy`, which computes the optimal
assignment energy directly (each group of flows sharing a relay path runs
at the group's total-size rate), matching the closed forms in the proofs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.core.dcfs import solve_dcfs
from repro.errors import InfeasibleError, ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.scheduling.schedule import EnergyBreakdown, Schedule
from repro.topology.base import Topology

__all__ = ["ExactResult", "solve_dcfsr_exact", "exact_parallel_assignment_energy"]

Path = tuple[str, ...]


@dataclass(frozen=True)
class ExactResult:
    """The optimal assignment found by exhaustive search."""

    schedule: Schedule
    energy: EnergyBreakdown
    paths: Mapping[int | str, Path]
    assignments_tried: int


def _candidate_paths(
    topology: Topology, src: str, dst: str, max_paths: int, max_hops: int | None
) -> list[Path]:
    """Up to ``max_paths`` shortest simple paths (hop metric)."""
    generator = nx.shortest_simple_paths(topology.graph, src, dst)
    paths: list[Path] = []
    for path in generator:
        if max_hops is not None and len(path) - 1 > max_hops:
            break
        paths.append(tuple(path))
        if len(paths) >= max_paths:
            break
    if not paths:
        raise ValidationError(f"no path between {src!r} and {dst!r}")
    return paths


def solve_dcfsr_exact(
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    max_paths_per_flow: int = 6,
    max_hops: int | None = None,
    max_assignments: int = 200_000,
) -> ExactResult:
    """Enumerate path assignments, run Most-Critical-First on each, return
    the minimum-``Phi_f`` solution.

    Raises
    ------
    ValidationError
        When the assignment space exceeds ``max_assignments`` (refuse
        rather than silently sample).
    InfeasibleError
        When *every* assignment is scheduling-infeasible.
    """
    flows.validate_against(topology)
    candidates = {
        flow.id: _candidate_paths(
            topology, flow.src, flow.dst, max_paths_per_flow, max_hops
        )
        for flow in flows
    }
    space = math.prod(len(c) for c in candidates.values())
    if space > max_assignments:
        raise ValidationError(
            f"assignment space {space} exceeds max_assignments "
            f"{max_assignments}; shrink the instance or raise the cap"
        )

    t0 = min(f.release for f in flows)
    t1 = max(f.deadline for f in flows)
    ids = list(flows.ids)
    best: ExactResult | None = None
    tried = 0
    for combo in itertools.product(*(candidates[i] for i in ids)):
        tried += 1
        paths = dict(zip(ids, combo))
        try:
            result = solve_dcfs(flows, topology, paths, power)
        except InfeasibleError:
            continue
        energy = result.schedule.energy(power, horizon=(t0, t1))
        if best is None or energy.total < best.energy.total - 1e-12:
            best = ExactResult(
                schedule=result.schedule,
                energy=energy,
                paths=paths,
                assignments_tried=tried,
            )
    if best is None:
        raise InfeasibleError("every path assignment was scheduling-infeasible")
    return ExactResult(
        schedule=best.schedule,
        energy=best.energy,
        paths=best.paths,
        assignments_tried=tried,
    )


def exact_parallel_assignment_energy(
    sizes: Sequence[float],
    num_paths: int,
    power: PowerModel,
    links_per_path: int = 2,
    horizon: float = 1.0,
) -> tuple[float, tuple[tuple[int, ...], ...]]:
    """Optimal energy for the reductions' parallel-path instances.

    All flows share release 0 and deadline ``horizon``; assigning a group
    ``G`` of flows to one relay path makes each of its ``links_per_path``
    links run at rate ``sum(G) / horizon`` for the whole horizon, costing
    ``links_per_path * horizon * f(sum(G)/horizon)``.  The function
    enumerates set partitions of the flows into at most ``num_paths``
    groups and returns the cheapest total energy and the grouping.

    Only sensible for <= ~12 flows (Bell-number growth).
    """
    n = len(sizes)
    if n == 0:
        raise ValidationError("need at least one flow size")
    if n > 12:
        raise ValidationError(f"too many flows for partition enumeration: {n}")
    if num_paths < 1:
        raise ValidationError("need at least one path")

    best_energy = math.inf
    best_grouping: tuple[tuple[int, ...], ...] = ()

    # Enumerate set partitions via restricted growth strings.
    def partitions(assignment: list[int], idx: int, num_groups: int):
        nonlocal best_energy, best_grouping
        if idx == n:
            groups: dict[int, list[int]] = {}
            for item, g in enumerate(assignment):
                groups.setdefault(g, []).append(item)
            energy = 0.0
            feasible = True
            for members in groups.values():
                rate = sum(sizes[m] for m in members) / horizon
                if rate > power.capacity * (1.0 + 1e-12):
                    feasible = False
                    break
                energy += links_per_path * horizon * power.power(rate)
            if feasible and energy < best_energy - 1e-15:
                best_energy = energy
                best_grouping = tuple(
                    tuple(sorted(m)) for m in groups.values()
                )
            return
        for g in range(min(num_groups + 1, num_paths)):
            assignment.append(g)
            partitions(assignment, idx + 1, max(num_groups, g + 1))
            assignment.pop()

    partitions([], 0, 0)
    if not math.isfinite(best_energy):
        raise InfeasibleError(
            "no capacity-feasible grouping exists for the parallel instance"
        )
    return best_energy, best_grouping
