"""Standalone fractional lower bound for DCFSR (the Fig. 2 normalizer).

The bound is the optimum of the multi-step F-MCF relaxation with the convex
*envelope* of the link power function as the edge cost:

* constant-density fluid rates minimize the dynamic term by Jensen's
  inequality for any fixed fractional routing;
* fractional multi-path routing can only beat single-path routing;
* the envelope under-charges power-down idle energy (it bills sigma
  pro-rata below the optimal operating rate and only while traffic flows,
  whereas a real schedule pays sigma across the whole horizon on every
  active link).

Hence ``LB <= Phi_f(OPT)`` and ratios ``Phi_f(ALG) / LB`` upper-bound true
approximation ratios — exactly how the paper normalizes Figure 2.
"""

from __future__ import annotations

from repro.core.relaxation import default_cost, solve_relaxation
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.routing.mcflow import FrankWolfeSolver
from repro.topology.base import Topology

__all__ = ["fractional_lower_bound"]


def fractional_lower_bound(
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    fw_max_iterations: int = 60,
    fw_gap_tolerance: float = 1e-3,
) -> float:
    """Compute the relaxation lower bound on ``Phi_f`` for an instance.

    Runs the same per-interval Frank–Wolfe sweep as Random-Schedule; use
    :func:`repro.core.solve_dcfsr` instead when you also need the rounded
    schedule (it exposes its ``lower_bound`` without re-solving).

    The sweep runs through a persistent
    :class:`~repro.routing.mcflow.RelaxationSession` (created by
    :func:`solve_relaxation`), so consecutive intervals reuse the
    solver's path registry and flow arrays; the bound itself never
    materializes any per-path dictionaries.
    """
    flows.validate_against(topology)
    solver = FrankWolfeSolver(
        topology,
        default_cost(power),
        max_iterations=fw_max_iterations,
        gap_tolerance=fw_gap_tolerance,
    )
    return solve_relaxation(flows, solver).lower_bound
