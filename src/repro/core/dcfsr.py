"""Random-Schedule: the paper's DCFSR approximation (Algorithm 2).

DCFSR chooses a route *and* a rate schedule per flow.  It is strongly
NP-hard (Theorem 2), so the paper approximates:

1. **Relax** to a multi-step fractional MCF (densities, multi-path,
   free power toggling) and solve each elementary interval by convex
   programming — :mod:`repro.core.relaxation`.
2. **Extract candidate paths** per flow per interval with fractional
   weights (the Frank–Wolfe solver returns them natively).
3. **Round**: aggregate weights across intervals
   (``w_bar_P = sum_k w_P(k) |I_k| / (d_i - r_i)``) and draw one path per
   flow — :mod:`repro.routing.rounding`.
4. **Schedule**: transmit each flow at its density ``D_i`` across its whole
   span on the drawn path; per-link EDF forwards interval-by-interval
   (Theorem 4 guarantees every deadline is met because each interval's
   arrivals exactly fit at rate ``sum of active densities``).

The rounding does not guarantee the link-capacity constraint; following the
paper we re-draw until the realized schedule is capacity-feasible (or a
retry budget is exhausted, in which case the best attempt is returned and
flagged).  The relaxation objective is also a certified lower bound on the
optimum, which is the normalization used throughout Figure 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.relaxation import (
    RelaxationResult,
    default_cost,
    solve_relaxation,
)
from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.flows.intervals import TimeGrid
from repro.power.model import PowerModel
from repro.routing.mcflow import FrankWolfeSolver
from repro.routing.rounding import aggregate_path_weights, sample_path
from repro.scheduling.schedule import (
    EnergyBreakdown,
    FlowSchedule,
    Schedule,
    Segment,
)
from repro.topology.base import Topology

__all__ = [
    "DcfsrResult",
    "solve_dcfsr",
    "round_schedule",
    "round_schedule_deterministic",
]

Path = tuple[str, ...]


@dataclass(frozen=True)
class DcfsrResult:
    """Outcome of Random-Schedule.

    Attributes
    ----------
    schedule:
        The rounded schedule (one path per flow, constant density rates).
    energy:
        ``Phi_f`` of the returned schedule.
    lower_bound:
        The relaxation objective — a lower bound on the DCFSR optimum; the
        paper's Figure 2 normalizes by this value.
    relaxation:
        The underlying per-interval fractional solutions.
    rounding_weights:
        Per flow, the aggregated ``w_bar`` path distribution it was drawn
        from (useful for ablations on rounding variance).
    attempts:
        Number of rounding draws performed (1 = first draw was feasible).
    capacity_feasible:
        Whether the returned schedule respects every link capacity.
    """

    schedule: Schedule
    energy: EnergyBreakdown
    lower_bound: float
    relaxation: RelaxationResult
    rounding_weights: Mapping[int | str, Mapping[Path, float]]
    attempts: int
    capacity_feasible: bool

    @property
    def approximation_ratio(self) -> float:
        """``Phi_f(schedule) / lower_bound`` — an upper bound on the true
        approximation ratio (the real optimum sits between the two)."""
        return self.energy.total / self.lower_bound


def round_schedule(
    flows: FlowSet,
    relaxation: RelaxationResult,
    rng: np.random.Generator,
) -> tuple[Schedule, dict[int | str, dict[Path, float]]]:
    """One randomized-rounding draw: a single path and density-rate profile
    per flow.  Returns the schedule and the ``w_bar`` distributions used."""
    weights: dict[int | str, dict[Path, float]] = {}
    flow_schedules = []
    for flow in flows:
        fractions = relaxation.fractions_for_flow(flow.id)
        w_bar = aggregate_path_weights(flow, fractions)
        weights[flow.id] = w_bar
        path = sample_path(w_bar, rng)
        flow_schedules.append(
            FlowSchedule(
                flow=flow,
                path=path,
                segments=(
                    Segment(
                        start=flow.release,
                        end=flow.deadline,
                        rate=flow.density,
                    ),
                ),
            )
        )
    return Schedule(flow_schedules), weights


def round_schedule_deterministic(
    flows: FlowSet,
    relaxation: RelaxationResult,
) -> tuple[Schedule, dict[int | str, dict[Path, float]]]:
    """Derandomized rounding: every flow takes its maximum-``w_bar`` path.

    A cheap stand-in for the method of conditional expectations: instead of
    sampling the ``w_bar`` distribution, commit to its mode.  Removes all
    run-to-run variance at the cost of occasionally over-concentrating
    correlated flows on a popular path; the rounding ablation quantifies
    the trade-off against random draws.
    """
    weights: dict[int | str, dict[Path, float]] = {}
    flow_schedules = []
    for flow in flows:
        fractions = relaxation.fractions_for_flow(flow.id)
        w_bar = aggregate_path_weights(flow, fractions)
        weights[flow.id] = w_bar
        path = max(sorted(w_bar), key=lambda p: w_bar[p])
        flow_schedules.append(
            FlowSchedule(
                flow=flow,
                path=path,
                segments=(
                    Segment(
                        start=flow.release,
                        end=flow.deadline,
                        rate=flow.density,
                    ),
                ),
            )
        )
    return Schedule(flow_schedules), weights


def solve_dcfsr(
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    seed: int | np.random.Generator = 0,
    max_attempts: int = 25,
    fw_max_iterations: int = 60,
    fw_gap_tolerance: float = 1e-3,
    rounding: str = "random",
) -> DcfsrResult:
    """Run the full Random-Schedule pipeline.

    Parameters
    ----------
    flows, topology, power:
        The DCFSR instance.  With an infinite-capacity power model the
        first rounding draw is always accepted.
    seed:
        Seed or generator for the rounding randomness.
    max_attempts:
        Rounding retries before giving up on capacity feasibility; the
        best (lowest-energy) draw seen is returned either way, preferring
        feasible draws.
    fw_max_iterations, fw_gap_tolerance:
        Frank–Wolfe stopping criteria for each interval's F-MCF solve.
    rounding:
        ``"random"`` (the paper's Algorithm 2) or ``"deterministic"``
        (argmax-``w_bar`` derandomization; single attempt, no variance).
    """
    if max_attempts < 1:
        raise ValidationError(f"max_attempts must be >= 1, got {max_attempts}")
    if rounding not in ("random", "deterministic"):
        raise ValidationError(f"unknown rounding mode {rounding!r}")
    flows.validate_against(topology)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    grid = TimeGrid(flows)
    solver = FrankWolfeSolver(
        topology,
        default_cost(power),
        max_iterations=fw_max_iterations,
        gap_tolerance=fw_gap_tolerance,
    )
    # solve_relaxation drives the sweep through a persistent
    # RelaxationSession: the path registry and flow arrays carry across
    # intervals (commodity-set diffs, no dict rebuilds).
    relaxation = solve_relaxation(flows, solver, grid)
    lower_bound = relaxation.lower_bound

    horizon = grid.horizon
    best: tuple[bool, EnergyBreakdown, Schedule, dict] | None = None
    attempts = 0
    draw_budget = 1 if rounding == "deterministic" else max_attempts
    for attempts in range(1, draw_budget + 1):
        if rounding == "deterministic":
            schedule, weights = round_schedule_deterministic(flows, relaxation)
        else:
            schedule, weights = round_schedule(flows, relaxation, rng)
        # max_link_rate and energy share the schedule's cached link-rate
        # profiles, so each draw compiles its per-edge profiles only once.
        feasible = (
            not math.isfinite(power.capacity)
            or schedule.max_link_rate() <= power.capacity * (1.0 + 1e-9)
        )
        breakdown = schedule.energy(power, horizon=horizon)
        key = (feasible, -breakdown.total)
        if best is None or key > (best[0], -best[1].total):
            best = (feasible, breakdown, schedule, weights)
        if feasible:
            break

    assert best is not None
    feasible, breakdown, schedule, weights = best
    return DcfsrResult(
        schedule=schedule,
        energy=breakdown,
        lower_bound=lower_bound,
        relaxation=relaxation,
        rounding_weights=weights,
        attempts=attempts,
        capacity_feasible=feasible,
    )
