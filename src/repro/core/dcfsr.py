"""Random-Schedule: the paper's DCFSR approximation (Algorithm 2).

DCFSR chooses a route *and* a rate schedule per flow.  It is strongly
NP-hard (Theorem 2), so the paper approximates:

1. **Relax** to a multi-step fractional MCF (densities, multi-path,
   free power toggling) and solve each elementary interval by convex
   programming — :mod:`repro.core.relaxation`.
2. **Extract candidate paths** per flow per interval with fractional
   weights (the Frank–Wolfe solver returns them natively).
3. **Round**: aggregate weights across intervals
   (``w_bar_P = sum_k w_P(k) |I_k| / (d_i - r_i)``) and draw one path per
   flow — :mod:`repro.routing.rounding`.
4. **Schedule**: transmit each flow at its density ``D_i`` across its whole
   span on the drawn path; per-link EDF forwards interval-by-interval
   (Theorem 4 guarantees every deadline is met because each interval's
   arrivals exactly fit at rate ``sum of active densities``).

The rounding does not guarantee the link-capacity constraint; following the
paper we re-draw until the realized schedule is capacity-feasible (or a
retry budget is exhausted, in which case the best attempt is returned and
flagged).  The relaxation objective is also a certified lower bound on the
optimum, which is the normalization used throughout Figure 2.

The rounding loop is array-native end to end (DESIGN.md Section 10): the
per-interval :class:`~repro.routing.mcflow.ArrayPathFlows` rows feed
:func:`~repro.routing.rounding.aggregate_path_weights_array` once, and
every subsequent draw is one batched
:func:`~repro.routing.rounding.sample_paths` pass.  Solutions produced by
the dict reference solver (no array view) fall back to the retained
:func:`round_schedule_reference` loop.  :class:`RelaxationPipeline`
packages the whole relax → aggregate → draw chain around one persistent
:class:`~repro.routing.mcflow.RelaxationSession` for callers that feed it
a *sequence* of related instances (the streaming replay policy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.relaxation import (
    RelaxationResult,
    default_cost,
    solve_relaxation,
)
from repro.errors import ValidationError
from repro.flows.flow import Flow, FlowSet
from repro.flows.intervals import TimeGrid
from repro.power.model import PowerModel
from repro.routing.background import BackgroundProfile
from repro.routing.costs import EdgeCost
from repro.routing.mcflow import FrankWolfeSolver, RelaxationSession
from repro.routing.rounding import (
    ArrayPathWeights,
    aggregate_path_weights,
    aggregate_path_weights_array,
    argmax_paths,
    sample_path,
    sample_paths,
)
from repro.scheduling.schedule import (
    EnergyBreakdown,
    FlowSchedule,
    Schedule,
    Segment,
)
from repro.topology.base import Topology

__all__ = [
    "DcfsrResult",
    "RelaxationPipeline",
    "solve_dcfsr",
    "relaxation_weights",
    "round_schedule",
    "round_schedule_deterministic",
    "round_schedule_reference",
    "round_schedule_deterministic_reference",
]

Path = tuple[str, ...]


@dataclass(frozen=True)
class DcfsrResult:
    """Outcome of Random-Schedule.

    Attributes
    ----------
    schedule:
        The rounded schedule (one path per flow, constant density rates).
    energy:
        ``Phi_f`` of the returned schedule.
    lower_bound:
        The relaxation objective — a lower bound on the DCFSR optimum; the
        paper's Figure 2 normalizes by this value.
    relaxation:
        The underlying per-interval fractional solutions.
    rounding_weights:
        Per flow, the aggregated ``w_bar`` path distribution it was drawn
        from (useful for ablations on rounding variance).
    attempts:
        Number of rounding draws performed (1 = first draw was feasible).
    capacity_feasible:
        Whether the returned schedule respects every link capacity.
    """

    schedule: Schedule
    energy: EnergyBreakdown
    lower_bound: float
    relaxation: RelaxationResult
    rounding_weights: Mapping[int | str, Mapping[Path, float]]
    attempts: int
    capacity_feasible: bool

    @property
    def approximation_ratio(self) -> float:
        """``Phi_f(schedule) / lower_bound`` — an upper bound on the true
        approximation ratio (the real optimum sits between the two)."""
        return self.energy.total / self.lower_bound


def _density_schedule(flow: Flow, path: Path) -> FlowSchedule:
    """The Algorithm-2 service profile: density rate over the whole span."""
    return FlowSchedule(
        flow=flow,
        path=path,
        segments=(
            Segment(start=flow.release, end=flow.deadline, rate=flow.density),
        ),
    )


def relaxation_weights(
    flows: Sequence[Flow], relaxation: RelaxationResult
) -> ArrayPathWeights | None:
    """Aggregate every flow's ``w_bar`` straight from the solver rows.

    Returns None when any interval solution lacks the array view (dict
    reference solver) — callers then take the nested-dict path.
    """
    contributions = []
    for iv in relaxation.intervals:
        arrays = iv.solution.arrays
        if arrays is None:
            return None
        contributions.append((iv.interval.length, arrays))
    return aggregate_path_weights_array(list(flows), contributions)


def round_schedule(
    flows: FlowSet,
    relaxation: RelaxationResult,
    rng: np.random.Generator,
) -> tuple[Schedule, Mapping[int | str, Mapping[Path, float]]]:
    """One randomized-rounding draw: a single path and density-rate profile
    per flow.  Returns the schedule and the ``w_bar`` distributions used.

    Array-native: one registry-space aggregation plus one batched sampling
    pass; consumes the same generator stream (one uniform per flow, in
    flow order) as :func:`round_schedule_reference`.
    """
    weights = relaxation_weights(list(flows), relaxation)
    if weights is None:
        return round_schedule_reference(flows, relaxation, rng)
    paths = sample_paths(weights, rng)
    return (
        Schedule(
            _density_schedule(flow, path)
            for flow, path in zip(flows, paths)
        ),
        weights,
    )


def round_schedule_deterministic(
    flows: FlowSet,
    relaxation: RelaxationResult,
) -> tuple[Schedule, Mapping[int | str, Mapping[Path, float]]]:
    """Derandomized rounding: every flow takes its maximum-``w_bar`` path.

    A cheap stand-in for the method of conditional expectations: instead of
    sampling the ``w_bar`` distribution, commit to its mode.  Removes all
    run-to-run variance at the cost of occasionally over-concentrating
    correlated flows on a popular path; the rounding ablation quantifies
    the trade-off against random draws.
    """
    weights = relaxation_weights(list(flows), relaxation)
    if weights is None:
        return round_schedule_deterministic_reference(flows, relaxation)
    paths = argmax_paths(weights)
    return (
        Schedule(
            _density_schedule(flow, path)
            for flow, path in zip(flows, paths)
        ),
        weights,
    )


def round_schedule_reference(
    flows: FlowSet,
    relaxation: RelaxationResult,
    rng: np.random.Generator,
) -> tuple[Schedule, dict[int | str, dict[Path, float]]]:
    """The nested-dict rounding loop, retained as the pinning oracle for
    the array engine (one :func:`aggregate_path_weights` +
    :func:`sample_path` per flow)."""
    weights: dict[int | str, dict[Path, float]] = {}
    flow_schedules = []
    for flow in flows:
        fractions = relaxation.fractions_for_flow(flow.id)
        w_bar = aggregate_path_weights(flow, fractions)
        weights[flow.id] = w_bar
        flow_schedules.append(
            _density_schedule(flow, sample_path(w_bar, rng))
        )
    return Schedule(flow_schedules), weights


def round_schedule_deterministic_reference(
    flows: FlowSet,
    relaxation: RelaxationResult,
) -> tuple[Schedule, dict[int | str, dict[Path, float]]]:
    """Dict-loop derandomized rounding (argmax of each ``w_bar``)."""
    weights: dict[int | str, dict[Path, float]] = {}
    flow_schedules = []
    for flow in flows:
        fractions = relaxation.fractions_for_flow(flow.id)
        w_bar = aggregate_path_weights(flow, fractions)
        weights[flow.id] = w_bar
        path = max(sorted(w_bar), key=lambda p: w_bar[p])
        flow_schedules.append(_density_schedule(flow, path))
    return Schedule(flow_schedules), weights


class RelaxationPipeline:
    """Relax → aggregate → round, around one persistent session.

    The pipeline owns a :class:`FrankWolfeSolver` and its
    :class:`RelaxationSession`, so a caller feeding it consecutive related
    instances (the sliding-horizon replay policy, an interval sweep
    harness) pays commodity-set diffs instead of cold F-MCF solves, and
    every hand-off between stages stays in registry-id space: interval
    rows aggregate via :func:`aggregate_path_weights_array`, draws run
    through batched :func:`sample_paths`.
    """

    def __init__(
        self,
        topology: Topology,
        power: PowerModel,
        max_iterations: int = 60,
        gap_tolerance: float = 1e-3,
        cost: EdgeCost | None = None,
    ) -> None:
        self.topology = topology
        self.power = power
        self.solver = FrankWolfeSolver(
            topology,
            cost if cost is not None else default_cost(power),
            max_iterations=max_iterations,
            gap_tolerance=gap_tolerance,
        )
        self.session = RelaxationSession(self.solver)

    def solve(
        self,
        flows: FlowSet,
        grid: TimeGrid | None = None,
        background: np.ndarray | BackgroundProfile | None = None,
        warm: bool = True,
    ) -> RelaxationResult:
        """Solve the instance's interval relaxation through the session.

        ``background`` fixes committed per-edge loads every interval
        routes around — a flat vector charges all intervals alike, a
        :class:`~repro.routing.background.BackgroundProfile` charges
        each elementary interval its own exact slice (see
        :func:`~repro.core.relaxation.solve_relaxation`); ``warm=False``
        bypasses the session entirely and solves every interval cold
        (the benchmark baseline).
        """
        return solve_relaxation(
            flows,
            self.solver,
            grid,
            session=self.session if warm else None,
            background=background,
            warm=warm,
        )

    def weights(
        self, flows: FlowSet, relaxation: RelaxationResult
    ) -> ArrayPathWeights:
        """Aggregated ``w_bar`` distributions for ``flows`` (array rows)."""
        weights = relaxation_weights(list(flows), relaxation)
        if weights is None:
            raise ValidationError(
                "relaxation has no array path flows (reference-solver "
                "output?); RelaxationPipeline requires solutions from the "
                "array-native FrankWolfeSolver"
            )
        return weights

    def draw(
        self, weights: ArrayPathWeights, rng: np.random.Generator
    ) -> list[Path]:
        """One batched randomized-rounding draw (one route per flow)."""
        return sample_paths(weights, rng)

    def reset(self) -> None:
        """Forget carried session state (the next solve is cold)."""
        self.session.reset()


def solve_dcfsr(
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    seed: int | np.random.Generator = 0,
    max_attempts: int = 25,
    fw_max_iterations: int = 60,
    fw_gap_tolerance: float = 1e-3,
    rounding: str = "random",
) -> DcfsrResult:
    """Run the full Random-Schedule pipeline.

    Parameters
    ----------
    flows, topology, power:
        The DCFSR instance.  With an infinite-capacity power model the
        first rounding draw is always accepted.
    seed:
        Seed or generator for the rounding randomness.
    max_attempts:
        Rounding retries before giving up on capacity feasibility; the
        best (lowest-energy) draw seen is returned either way, preferring
        feasible draws.
    fw_max_iterations, fw_gap_tolerance:
        Frank–Wolfe stopping criteria for each interval's F-MCF solve.
    rounding:
        ``"random"`` (the paper's Algorithm 2) or ``"deterministic"``
        (argmax-``w_bar`` derandomization; single attempt, no variance).
    """
    if max_attempts < 1:
        raise ValidationError(f"max_attempts must be >= 1, got {max_attempts}")
    if rounding not in ("random", "deterministic"):
        raise ValidationError(f"unknown rounding mode {rounding!r}")
    flows.validate_against(topology)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    grid = TimeGrid(flows)
    solver = FrankWolfeSolver(
        topology,
        default_cost(power),
        max_iterations=fw_max_iterations,
        gap_tolerance=fw_gap_tolerance,
    )
    # solve_relaxation drives the sweep through a persistent
    # RelaxationSession: the path registry and flow arrays carry across
    # intervals (commodity-set diffs, no dict rebuilds).
    relaxation = solve_relaxation(flows, solver, grid)
    lower_bound = relaxation.lower_bound

    # The aggregation is draw-independent: build the w_bar rows once and
    # let every retry pay only its batched sampling pass.
    weights = relaxation_weights(list(flows), relaxation)
    assert weights is not None  # the array solver always yields rows

    horizon = grid.horizon
    best: tuple[bool, EnergyBreakdown, Schedule] | None = None
    attempts = 0
    draw_budget = 1 if rounding == "deterministic" else max_attempts
    for attempts in range(1, draw_budget + 1):
        if rounding == "deterministic":
            paths = argmax_paths(weights)
        else:
            paths = sample_paths(weights, rng)
        schedule = Schedule(
            _density_schedule(flow, path)
            for flow, path in zip(flows, paths)
        )
        # max_link_rate and energy share the schedule's cached link-rate
        # profiles, so each draw compiles its per-edge profiles only once.
        feasible = (
            not math.isfinite(power.capacity)
            or schedule.max_link_rate() <= power.capacity * (1.0 + 1e-9)
        )
        breakdown = schedule.energy(power, horizon=horizon)
        key = (feasible, -breakdown.total)
        if best is None or key > (best[0], -best[1].total):
            best = (feasible, breakdown, schedule)
        if feasible:
            break

    assert best is not None
    feasible, breakdown, schedule = best
    return DcfsrResult(
        schedule=schedule,
        energy=breakdown,
        lower_bound=lower_bound,
        relaxation=relaxation,
        rounding_weights=weights,
        attempts=attempts,
        capacity_feasible=feasible,
    )
