"""The multi-step F-MCF relaxation shared by Random-Schedule and the LB.

Random-Schedule's first stage (Algorithm 2, steps 1–5) relaxes DCFSR by

* fixing each flow's traffic to its density ``D_i`` (constant-rate fluid),
* allowing fractional multi-path routing, and
* allowing links to power on/off freely per interval;

the relaxed problem then decomposes into one fractional MCF per elementary
interval.  This module runs that decomposition once and exposes the results
to both the rounding stage and the lower-bound computation, warm-starting
consecutive intervals (their active-flow sets overlap heavily) so the whole
sweep stays fast even for the paper's full-scale Figure 2 instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.flows.intervals import Interval, TimeGrid
from repro.power.model import PowerModel
from repro.routing.background import BackgroundProfile
from repro.routing.costs import EdgeCost, envelope_cost
from repro.routing.mcflow import (
    Commodity,
    FrankWolfeSolver,
    MCFSolution,
    RelaxationSession,
)

__all__ = ["IntervalSolution", "RelaxationResult", "solve_relaxation"]

Path = tuple[str, ...]


@dataclass(frozen=True)
class IntervalSolution:
    """The fractional routing of one elementary interval."""

    interval: Interval
    solution: MCFSolution
    active_flow_ids: tuple[int | str, ...]

    @property
    def cost_contribution(self) -> float:
        """``|I_k| * sum_e envelope(x*_e(k))`` — this interval's share of
        the relaxation objective (primal value)."""
        return self.interval.length * self.solution.objective

    @property
    def lower_bound_contribution(self) -> float:
        """This interval's share of the *certified* lower bound (uses the
        Frank–Wolfe dual bound, which never exceeds the true interval
        optimum regardless of stopping tolerance)."""
        return self.interval.length * self.solution.lower_bound


@dataclass(frozen=True)
class RelaxationResult:
    """All per-interval fractional solutions plus aggregate quantities."""

    grid: TimeGrid
    intervals: tuple[IntervalSolution, ...]

    @property
    def objective(self) -> float:
        """The relaxation's total (primal) cost."""
        return sum(iv.cost_contribution for iv in self.intervals)

    @property
    def lower_bound(self) -> float:
        """Certified lower bound on ``Phi_f`` of the DCFSR optimum.

        Three relaxations stack: (i) the envelope charges idle power only on
        fractionally-used links and only while they carry traffic, which
        under-counts the true horizon-long idle term; (ii) the dynamic term
        is Jensen-minimal at constant densities for any fixed fractional
        routing; (iii) each interval uses the Frank–Wolfe *dual* bound,
        which never exceeds the interval's true fractional optimum.
        """
        return sum(iv.lower_bound_contribution for iv in self.intervals)

    def fractions_for_flow(
        self, flow_id: int | str
    ) -> list[tuple[Interval, dict[Path, float]]]:
        """Per-interval path fractions of one flow (rounding input)."""
        out: list[tuple[Interval, dict[Path, float]]] = []
        for iv in self.intervals:
            if flow_id in iv.solution.path_flows:
                out.append((iv.interval, iv.solution.path_fractions(flow_id)))
        return out


def solve_relaxation(
    flows: FlowSet,
    solver: FrankWolfeSolver,
    grid: TimeGrid | None = None,
    session: RelaxationSession | None = None,
    background=None,
    warm: bool = True,
) -> RelaxationResult:
    """Solve the per-interval F-MCF problems left to right with warm starts.

    With the array-native :class:`FrankWolfeSolver` the sweep runs through
    a persistent :class:`RelaxationSession` (created on the fly when the
    caller does not pass one): consecutive intervals share the path
    registry and flow arrays, and each interval applies only its
    commodity-set diff.  Solvers without session support (the retained
    reference) fall back to dict-based warm starts.

    ``background`` fixes per-edge committed loads every interval routes
    around (array solvers only; see :meth:`FrankWolfeSolver.solve`).  A
    flat vector charges every interval the same loads.  A
    :class:`~repro.routing.background.BackgroundProfile` is resolved
    *per elementary interval*: interval ``[a, b)`` is charged
    ``profile.mean_over(a, b)`` — its own exact background slice — not
    the window mean, which is what retires the window-averaged
    approximation at the relaxation layer.
    ``warm=False`` forces every interval to a cold F-MCF solve — no
    session, no dict warm start — which is what the streaming replay
    benchmarks compare the persistent-session policy against.
    """
    if grid is None:
        grid = TimeGrid(flows)
    if session is not None and session.solver is not solver:
        raise ValidationError(
            "session belongs to a different solver than the one passed"
        )
    array_solver = isinstance(solver, FrankWolfeSolver)
    if background is not None and not array_solver:
        raise ValidationError(
            "background loads require the array-native FrankWolfeSolver"
        )
    if not warm:
        if session is not None:
            raise ValidationError("warm=False cannot use a session")
    elif session is None and array_solver:
        session = RelaxationSession(solver)
    profile = background if isinstance(background, BackgroundProfile) else None
    interval_solutions: list[IntervalSolution] = []
    previous: MCFSolution | None = None
    # One Commodity per flow for the whole sweep: a flow's demand is its
    # density, constant across every interval it is active in, so the
    # per-interval commodity lists are views into this cache (building
    # fresh dataclasses per interval dominated dense streaming windows).
    commodity_of: dict[int | str, Commodity] = {}
    for interval in grid.intervals:
        active = grid.active_flows(interval)
        if not active:
            continue
        commodities = []
        for f in active:
            commodity = commodity_of.get(f.id)
            if commodity is None:
                commodity = Commodity(
                    id=f.id, src=f.src, dst=f.dst, demand=f.density
                )
                commodity_of[f.id] = commodity
            commodities.append(commodity)
        bg = (
            profile.mean_over(interval.start, interval.end)
            if profile is not None
            else background
        )
        if session is not None:
            solution = session.solve(commodities, background=bg)
        elif not warm:
            if array_solver:
                solution = solver.solve(commodities, background=bg)
            else:
                solution = solver.solve(commodities)
        else:
            solution = solver.solve(commodities, warm_start=previous)
            previous = solution
        interval_solutions.append(
            IntervalSolution(
                interval=interval,
                solution=solution,
                active_flow_ids=tuple(f.id for f in active),
            )
        )
    return RelaxationResult(grid=grid, intervals=tuple(interval_solutions))


def default_cost(power: PowerModel) -> EdgeCost:
    """The relaxation's standard edge cost (envelope + capacity penalty)."""
    return envelope_cost(power)
