"""Most-Critical-First: the paper's optimal DCFS algorithm (Algorithm 1).

DCFS fixes a routing path ``P_i`` per flow and asks for the minimum-energy
rate assignment and schedule.  By Lemma 1 each flow uses a single rate; by
Lemma 2 the smallest deadline-feasible rates are optimal; and the problem
reduces to a YDS instance per link after giving each flow the *virtual
weight* ``w'_i = w_i * |P_i|^(1/alpha)`` (Theorem 1): a flow crossing many
links should run slightly faster is never beneficial — the Lagrange
condition equalizes ``|P_i|^(1/alpha) * s_i`` across flows sharing a
critical interval.

The algorithm repeats:

1. over every link ``e`` that still has unscheduled flows, find the
   interval ``I = [a, b]`` maximizing the *intensity*
   ``delta(I, e) = sum of virtual weights of flows on e with span in I``
   divided by the available (not yet reserved) time of ``I`` on ``e``;
2. pick the globally most critical ``(I*, e*)``, set every contained flow's
   rate to ``s_i = delta / |P_i|^(1/alpha)``, lay the flows out with
   preemptive EDF inside the available time of ``I*`` on ``e*``;
3. reserve each flow's execution segments on **every** link of its path
   (virtual-circuit occupancy) and drop the flows from all link queues.

The produced schedule transmits each flow at its single rate during its EDF
segments; per-link rates never stack because EDF serializes — with one
caveat the paper glosses over: reservations made *for other links'*
critical intervals can fragment (or even exhaust) a flow's span on its own
link.  Step 3's EDF only respects the critical link's reservations (as
written in the paper), so when strict availability accounting would make a
link's remaining flows unschedulable, this implementation falls back to
*overlap mode* for that link: intensity and EDF are computed on raw
(unreserved) time, letting segments stack on shared links.  Deadlines are
always met; the energy integral (``Schedule.energy``) charges the stacking
honestly.  See DESIGN.md Section 5, note 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import InfeasibleError, ValidationError
from repro.flows.flow import Flow, FlowSet
from repro.power.model import PowerModel
from repro.scheduling.edf import EdfJob, edf_schedule
from repro.scheduling.schedule import FlowSchedule, Schedule, Segment
from repro.scheduling.timeline import BlockedTimeline
from repro.scheduling.yds import YdsJob, critical_interval
from repro.topology.base import Edge, Topology, path_edges

__all__ = ["DcfsResult", "solve_dcfs"]


@dataclass(frozen=True)
class DcfsResult:
    """Output of Most-Critical-First.

    Attributes
    ----------
    schedule:
        The full schedule (rates, segments, paths); feed it to
        :meth:`repro.scheduling.Schedule.energy`.
    rates:
        The single transmission rate chosen per flow (Lemma 1).
    rounds:
        Number of critical-interval iterations the algorithm performed.
    """

    schedule: Schedule
    rates: Mapping[int | str, float]
    rounds: int

    def dynamic_energy(self, power: PowerModel) -> float:
        """Closed-form ``sum_i |P_i| * w_i * mu * s_i^(alpha-1)``.

        This is the paper's objective value for the chosen rates.  It equals
        the integrated link energy whenever no two flows' segments overlap
        on a shared link.  Algorithm 1 (faithfully implemented) only makes
        EDF avoid reserved time on the *critical* link of each round, so
        flows scheduled in different rounds can occasionally overlap on a
        non-critical shared link; superadditivity then makes the integrated
        energy slightly exceed this closed form.  ``Schedule.energy`` is
        the ground truth ``Phi_f``; tests pin ``integral >= closed form``
        with equality on overlap-free instances (Example 1, single links,
        disjoint paths).
        """
        total = 0.0
        for fs in self.schedule:
            s = self.rates[fs.flow.id]
            total += fs.num_links * fs.flow.size * power.mu * s ** (power.alpha - 1.0)
        return total


def _virtual_weight(flow: Flow, num_links: int, alpha: float) -> float:
    """``w'_i = w_i * |P_i|^(1/alpha)`` (Section III-C)."""
    return flow.size * num_links ** (1.0 / alpha)


def solve_dcfs(
    flows: FlowSet,
    topology: Topology,
    paths: Mapping[int | str, Sequence[str]],
    power: PowerModel,
) -> DcfsResult:
    """Run Most-Critical-First on a routed instance.

    Parameters
    ----------
    flows:
        The deadline-constrained flows.
    topology:
        The network; every path is validated against it.
    paths:
        Flow id -> node path from the flow's source to its destination.
    power:
        Link power model supplying ``alpha`` (the virtual-weight exponent).
        Capacity is *not* enforced — the paper's minimum-energy schedule
        relaxes it (Section III-A); use ``Schedule.verify`` to inspect
        violations.

    Raises
    ------
    InfeasibleError
        When reserved time fragments a flow's span so badly that EDF cannot
        meet a deadline (cannot happen on single-link instances; see
        DESIGN.md Section 5 note on Algorithm 1's optimality scope).
    """
    flows.validate_against(topology)
    alpha = power.alpha

    flow_paths: dict[int | str, tuple[str, ...]] = {}
    flow_edges: dict[int | str, tuple[Edge, ...]] = {}
    virtual: dict[int | str, float] = {}
    for flow in flows:
        if flow.id not in paths:
            raise ValidationError(f"no path supplied for flow {flow.id!r}")
        path = tuple(paths[flow.id])
        topology.validate_path(path, flow.src, flow.dst)
        flow_paths[flow.id] = path
        edges = path_edges(path)
        flow_edges[flow.id] = edges
        virtual[flow.id] = _virtual_weight(flow, len(edges), alpha)

    # Per-link queues of unscheduled flows.
    link_flows: dict[Edge, set[int | str]] = {}
    for flow in flows:
        for edge in flow_edges[flow.id]:
            link_flows.setdefault(edge, set()).add(flow.id)

    blocked: dict[Edge, BlockedTimeline] = {
        edge: BlockedTimeline() for edge in link_flows
    }
    # Cached most-critical interval per link; None = needs recomputation.
    # The boolean marks overlap mode (see the module docstring).
    Candidate = tuple[float, float, float, list[YdsJob], bool]
    cache: dict[Edge, Candidate | None] = {edge: None for edge in link_flows}

    def link_candidate(edge: Edge) -> Candidate:
        jobs = [
            YdsJob(
                id=fid,
                release=flows[fid].release,
                deadline=flows[fid].deadline,
                work=virtual[fid],
            )
            for fid in sorted(link_flows[edge], key=str)
        ]
        try:
            a, b, delta, contained = critical_interval(jobs, blocked[edge])
            return (a, b, delta, contained, False)
        except InfeasibleError:
            # Cross-link reservations exhausted some span on this link;
            # fall back to raw-time accounting (overlap mode).
            a, b, delta, contained = critical_interval(jobs, None)
            return (a, b, delta, contained, True)

    rates: dict[int | str, float] = {}
    segments: dict[int | str, list[tuple[float, float]]] = {}
    remaining = {flow.id for flow in flows}
    rounds = 0

    while remaining:
        rounds += 1
        best_edge: Edge | None = None
        best: Candidate | None = None
        for edge in sorted(link_flows):
            if not link_flows[edge]:
                continue
            if cache[edge] is None:
                cache[edge] = link_candidate(edge)
            candidate = cache[edge]
            assert candidate is not None
            if best is None or candidate[2] > best[2] + 1e-15:
                best, best_edge = candidate, edge
        if best is None or best_edge is None:
            raise AssertionError(
                "flows remain but no link has queued flows"
            )  # pragma: no cover

        a, b, delta, critical_jobs, overlap_mode = best
        edf_jobs = []
        for job in critical_jobs:
            fid = job.id
            rate = delta / len(flow_edges[fid]) ** (1.0 / alpha)
            rates[fid] = rate
            # Execution time w_i / s_i = w'_i / delta.
            edf_jobs.append(
                EdfJob(
                    id=fid,
                    release=flows[fid].release,
                    deadline=flows[fid].deadline,
                    duration=virtual[fid] / delta,
                )
            )
        edf_blocked = () if overlap_mode else blocked[best_edge].segments()
        try:
            placed = edf_schedule(edf_jobs, blocked=edf_blocked)
        except InfeasibleError:
            # Fragmented availability can defeat EDF even when the total
            # available time suffices; retry on raw time (overlap mode).
            try:
                placed = edf_schedule(edf_jobs, blocked=())
            except InfeasibleError as exc:
                raise InfeasibleError(
                    f"Most-Critical-First: EDF failed inside critical "
                    f"interval [{a:g}, {b:g}] on link {best_edge!r}: {exc}"
                ) from exc

        touched: set[Edge] = set()
        for job in critical_jobs:
            fid = job.id
            segments[fid] = placed[fid]
            remaining.discard(fid)
            for edge in flow_edges[fid]:
                link_flows[edge].discard(fid)
                blocked[edge].add_many(placed[fid])
                touched.add(edge)
        for edge in touched:
            cache[edge] = None

    flow_schedules = []
    for flow in flows:
        fs_segments = tuple(
            Segment(start=s, end=e, rate=rates[flow.id])
            for s, e in segments[flow.id]
        )
        flow_schedules.append(
            FlowSchedule(flow=flow, path=flow_paths[flow.id], segments=fs_segments)
        )
    return DcfsResult(
        schedule=Schedule(flow_schedules), rates=rates, rounds=rounds
    )
