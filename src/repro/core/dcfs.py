"""Most-Critical-First: the paper's optimal DCFS algorithm (Algorithm 1).

DCFS fixes a routing path ``P_i`` per flow and asks for the minimum-energy
rate assignment and schedule.  By Lemma 1 each flow uses a single rate; by
Lemma 2 the smallest deadline-feasible rates are optimal; and the problem
reduces to a YDS instance per link after giving each flow the *virtual
weight* ``w'_i = w_i * |P_i|^(1/alpha)`` (Theorem 1): a flow crossing many
links should run slightly faster is never beneficial — the Lagrange
condition equalizes ``|P_i|^(1/alpha) * s_i`` across flows sharing a
critical interval.

The algorithm repeats:

1. over every link ``e`` that still has unscheduled flows, find the
   interval ``I = [a, b]`` maximizing the *intensity*
   ``delta(I, e) = sum of virtual weights of flows on e with span in I``
   divided by the available (not yet reserved) time of ``I`` on ``e``;
2. pick the globally most critical ``(I*, e*)``, set every contained flow's
   rate to ``s_i = delta / |P_i|^(1/alpha)``, lay the flows out with
   preemptive EDF inside the available time of ``I*`` on ``e*``;
3. reserve each flow's execution segments on **every** link of its path
   (virtual-circuit occupancy) and drop the flows from all link queues.

The produced schedule transmits each flow at its single rate during its EDF
segments; per-link rates never stack because EDF serializes — with one
caveat the paper glosses over: reservations made *for other links'*
critical intervals can fragment (or even exhaust) a flow's span on its own
link.  Step 3's EDF only respects the critical link's reservations (as
written in the paper), so when strict availability accounting would make a
link's remaining flows unschedulable, this implementation falls back to
*overlap mode* for that link: intensity and EDF are computed on raw
(unreserved) time, letting segments stack on shared links.  Deadlines are
always met; the energy integral (``Schedule.energy``) charges the stacking
honestly.  See DESIGN.md Section 5, note 6.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import InfeasibleError, ValidationError
from repro.flows.flow import Flow, FlowSet
from repro.power.model import PowerModel
from repro.scheduling.edf import EdfJob, edf_schedule
from repro.scheduling.schedule import FlowSchedule, Schedule, Segment
from repro.scheduling.timeline import BlockedTimeline
from repro.scheduling.yds import (
    YdsJob,
    critical_interval_arrays,
    critical_interval_reference,
)
from repro.topology.base import Edge, Topology, path_edges

__all__ = ["DcfsResult", "solve_dcfs", "solve_dcfs_reference"]

#: The reference implementation's strictly-greater-by tolerance when a
#: later link challenges the current most-critical candidate.
_TIE_TOL = 1e-15


@dataclass(frozen=True)
class DcfsResult:
    """Output of Most-Critical-First.

    Attributes
    ----------
    schedule:
        The full schedule (rates, segments, paths); feed it to
        :meth:`repro.scheduling.Schedule.energy`.
    rates:
        The single transmission rate chosen per flow (Lemma 1).
    rounds:
        Number of critical-interval iterations the algorithm performed.
    """

    schedule: Schedule
    rates: Mapping[int | str, float]
    rounds: int

    def dynamic_energy(self, power: PowerModel) -> float:
        """Closed-form ``sum_i |P_i| * w_i * mu * s_i^(alpha-1)``.

        This is the paper's objective value for the chosen rates.  It equals
        the integrated link energy whenever no two flows' segments overlap
        on a shared link.  Algorithm 1 (faithfully implemented) only makes
        EDF avoid reserved time on the *critical* link of each round, so
        flows scheduled in different rounds can occasionally overlap on a
        non-critical shared link; superadditivity then makes the integrated
        energy slightly exceed this closed form.  ``Schedule.energy`` is
        the ground truth ``Phi_f``; tests pin ``integral >= closed form``
        with equality on overlap-free instances (Example 1, single links,
        disjoint paths).
        """
        total = 0.0
        for fs in self.schedule:
            s = self.rates[fs.flow.id]
            total += fs.num_links * fs.flow.size * power.mu * s ** (power.alpha - 1.0)
        return total


def _virtual_weight(flow: Flow, num_links: int, alpha: float) -> float:
    """``w'_i = w_i * |P_i|^(1/alpha)`` (Section III-C)."""
    return flow.size * num_links ** (1.0 / alpha)


def _prepare_instance(
    flows: FlowSet,
    topology: Topology,
    paths: Mapping[int | str, Sequence[str]],
    alpha: float,
) -> tuple[
    dict[int | str, tuple[str, ...]],
    dict[int | str, tuple[Edge, ...]],
    dict[int | str, float],
    dict[Edge, set[int | str]],
]:
    """Validate paths and build the shared per-flow/per-link indexes."""
    flow_paths: dict[int | str, tuple[str, ...]] = {}
    flow_edges: dict[int | str, tuple[Edge, ...]] = {}
    virtual: dict[int | str, float] = {}
    for flow in flows:
        if flow.id not in paths:
            raise ValidationError(f"no path supplied for flow {flow.id!r}")
        path = tuple(paths[flow.id])
        topology.validate_path(path, flow.src, flow.dst)
        flow_paths[flow.id] = path
        edges = path_edges(path)
        flow_edges[flow.id] = edges
        virtual[flow.id] = _virtual_weight(flow, len(edges), alpha)

    link_flows: dict[Edge, set[int | str]] = {}
    for flow in flows:
        for edge in flow_edges[flow.id]:
            link_flows.setdefault(edge, set()).add(flow.id)
    return flow_paths, flow_edges, virtual, link_flows


def solve_dcfs(
    flows: FlowSet,
    topology: Topology,
    paths: Mapping[int | str, Sequence[str]],
    power: PowerModel,
) -> DcfsResult:
    """Run Most-Critical-First on a routed instance.

    This is the incremental array-native engine (DESIGN.md Section 8): each
    link keeps its job set as NumPy arrays plus an alive mask, candidate
    critical intervals live in a lazy max-heap with version-stamp
    invalidation, and only links whose timelines were touched by the
    previous round's reservations are re-scored (with the vectorized
    :func:`repro.scheduling.yds.critical_interval_arrays` kernel).  Output
    — rates, rounds, segments, tie-breaking included — is identical to
    :func:`solve_dcfs_reference`, which ``tests/test_perf_kernels.py``
    pins.

    Parameters
    ----------
    flows:
        The deadline-constrained flows.
    topology:
        The network; every path is validated against it.
    paths:
        Flow id -> node path from the flow's source to its destination.
    power:
        Link power model supplying ``alpha`` (the virtual-weight exponent).
        Capacity is *not* enforced — the paper's minimum-energy schedule
        relaxes it (Section III-A); use ``Schedule.verify`` to inspect
        violations.

    Raises
    ------
    InfeasibleError
        When reserved time fragments a flow's span so badly that EDF cannot
        meet a deadline (cannot happen on single-link instances; see
        DESIGN.md Section 5 note on Algorithm 1's optimality scope).
    """
    flows.validate_against(topology)
    alpha = power.alpha
    flow_paths, flow_edges, virtual, link_flows = _prepare_instance(
        flows, topology, paths, alpha
    )

    blocked: dict[Edge, BlockedTimeline] = {
        edge: BlockedTimeline() for edge in link_flows
    }

    # Per-link job arrays in the reference's deterministic order (flow ids
    # sorted by str); scheduled flows are cleared in an alive mask and each
    # re-score views the arrays through it (storage is never shrunk).
    sorted_edges = sorted(link_flows)
    rank = {edge: i for i, edge in enumerate(sorted_edges)}
    edge_fids: dict[Edge, list[int | str]] = {}
    edge_release: dict[Edge, np.ndarray] = {}
    edge_deadline: dict[Edge, np.ndarray] = {}
    edge_work: dict[Edge, np.ndarray] = {}
    alive: dict[Edge, np.ndarray] = {}
    position: dict[Edge, dict[int | str, int]] = {}
    for edge in sorted_edges:
        fids = sorted(link_flows[edge], key=str)
        edge_fids[edge] = fids
        edge_release[edge] = np.array(
            [flows[f].release for f in fids], dtype=float
        )
        edge_deadline[edge] = np.array(
            [flows[f].deadline for f in fids], dtype=float
        )
        edge_work[edge] = np.array([virtual[f] for f in fids], dtype=float)
        alive[edge] = np.ones(len(fids), dtype=bool)
        position[edge] = {f: i for i, f in enumerate(fids)}

    # Candidate = (a, b, delta, contained_fids, overlap_mode).
    Candidate = tuple[float, float, float, list[int | str], bool]

    def link_candidate(edge: Edge) -> Candidate:
        keep = np.flatnonzero(alive[edge])
        rel = edge_release[edge][keep]
        dl = edge_deadline[edge][keep]
        wk = edge_work[edge][keep]
        try:
            a, b, delta, contained = critical_interval_arrays(
                rel, dl, wk, blocked[edge]
            )
            mode = False
        except InfeasibleError:
            # Cross-link reservations exhausted some span on this link;
            # fall back to raw-time accounting (overlap mode).
            a, b, delta, contained = critical_interval_arrays(rel, dl, wk, None)
            mode = True
        fids = [edge_fids[edge][i] for i in keep[contained].tolist()]
        return (a, b, delta, fids, mode)

    # Lazy max-heap of candidates: entries are (-delta, rank, version,
    # edge); an entry is stale once the edge's version moved past the one
    # it was pushed with (its timeline or queue changed) and is discarded
    # on pop.  Fresh candidates are also mirrored in ``cand`` for the
    # exact tie-break scan below.
    cand: dict[Edge, Candidate] = {}
    version: dict[Edge, int] = {edge: 0 for edge in sorted_edges}
    heap: list[tuple[float, int, int, Edge]] = []
    for edge in sorted_edges:
        candidate = link_candidate(edge)
        cand[edge] = candidate
        heap.append((-candidate[2], rank[edge], 0, edge))
    heapq.heapify(heap)

    rates: dict[int | str, float] = {}
    segments: dict[int | str, list[tuple[float, float]]] = {}
    remaining = {flow.id for flow in flows}
    rounds = 0

    while remaining:
        rounds += 1
        # Pop the maximum fresh candidate, then every fresh candidate
        # within the reference's 1e-15 challenge tolerance of it.
        top_delta: float | None = None
        contenders: list[tuple[float, int, int, Edge]] = []
        while heap:
            neg_delta, _rk, ver, edge = heap[0]
            if ver != version[edge] or not link_flows[edge]:
                heapq.heappop(heap)
                continue
            if top_delta is not None and -neg_delta < top_delta - _TIE_TOL:
                break
            contenders.append(heapq.heappop(heap))
            if top_delta is None:
                top_delta = -neg_delta
        if top_delta is None:
            raise AssertionError(
                "flows remain but no link has queued flows"
            )  # pragma: no cover
        if len(contenders) == 1:
            best_edge = contenders[0][3]
            best = cand[best_edge]
        else:
            # Near-tie: replay the reference's sequential challenge scan
            # over every queued link so the selected link matches exactly.
            best_edge = None
            best = None
            for edge in sorted_edges:
                if not link_flows[edge]:
                    continue
                candidate = cand[edge]
                if best is None or candidate[2] > best[2] + _TIE_TOL:
                    best, best_edge = candidate, edge
            assert best is not None and best_edge is not None
        for entry in contenders:
            if entry[3] != best_edge:
                heapq.heappush(heap, entry)

        a, b, delta, crit_fids, overlap_mode = best
        edf_jobs = []
        for fid in crit_fids:
            rate = delta / len(flow_edges[fid]) ** (1.0 / alpha)
            rates[fid] = rate
            # Execution time w_i / s_i = w'_i / delta.
            edf_jobs.append(
                EdfJob(
                    id=fid,
                    release=flows[fid].release,
                    deadline=flows[fid].deadline,
                    duration=virtual[fid] / delta,
                )
            )
        edf_blocked = () if overlap_mode else blocked[best_edge].segments()
        try:
            placed = edf_schedule(edf_jobs, blocked=edf_blocked)
        except InfeasibleError:
            # Fragmented availability can defeat EDF even when the total
            # available time suffices; retry on raw time (overlap mode).
            try:
                placed = edf_schedule(edf_jobs, blocked=())
            except InfeasibleError as exc:
                raise InfeasibleError(
                    f"Most-Critical-First: EDF failed inside critical "
                    f"interval [{a:g}, {b:g}] on link {best_edge!r}: {exc}"
                ) from exc

        touched: set[Edge] = set()
        for fid in crit_fids:
            segments[fid] = placed[fid]
            remaining.discard(fid)
            for edge in flow_edges[fid]:
                link_flows[edge].discard(fid)
                blocked[edge].add_many(placed[fid])
                alive[edge][position[edge][fid]] = False
                touched.add(edge)
        # Invalidate and eagerly re-score touched links (re-scoring must be
        # eager: added reservations can *raise* a link's best intensity, so
        # a purely pop-time refresh would under-estimate the heap top).
        for edge in touched:
            version[edge] += 1
            if link_flows[edge]:
                candidate = link_candidate(edge)
                cand[edge] = candidate
                heapq.heappush(
                    heap, (-candidate[2], rank[edge], version[edge], edge)
                )
            else:
                cand.pop(edge, None)

    flow_schedules = []
    for flow in flows:
        fs_segments = tuple(
            Segment(start=s, end=e, rate=rates[flow.id])
            for s, e in segments[flow.id]
        )
        flow_schedules.append(
            FlowSchedule(flow=flow, path=flow_paths[flow.id], segments=fs_segments)
        )
    return DcfsResult(
        schedule=Schedule(flow_schedules), rates=rates, rounds=rounds
    )


def solve_dcfs_reference(
    flows: FlowSet,
    topology: Topology,
    paths: Mapping[int | str, Sequence[str]],
    power: PowerModel,
) -> DcfsResult:
    """Pure-Python Most-Critical-First, retained as the pinning reference.

    Re-scores every queued link's critical interval with the brute-force
    :func:`critical_interval_reference` whenever its cache entry was
    invalidated and selects the winner with a sequential challenge scan.
    ``solve_dcfs`` must produce identical output.
    """
    flows.validate_against(topology)
    alpha = power.alpha
    flow_paths, flow_edges, virtual, link_flows = _prepare_instance(
        flows, topology, paths, alpha
    )

    blocked: dict[Edge, BlockedTimeline] = {
        edge: BlockedTimeline() for edge in link_flows
    }
    # Cached most-critical interval per link; None = needs recomputation.
    # The boolean marks overlap mode (see the module docstring).
    Candidate = tuple[float, float, float, list[YdsJob], bool]
    cache: dict[Edge, Candidate | None] = {edge: None for edge in link_flows}

    def link_candidate(edge: Edge) -> Candidate:
        jobs = [
            YdsJob(
                id=fid,
                release=flows[fid].release,
                deadline=flows[fid].deadline,
                work=virtual[fid],
            )
            for fid in sorted(link_flows[edge], key=str)
        ]
        try:
            a, b, delta, contained = critical_interval_reference(
                jobs, blocked[edge]
            )
            return (a, b, delta, contained, False)
        except InfeasibleError:
            # Cross-link reservations exhausted some span on this link;
            # fall back to raw-time accounting (overlap mode).
            a, b, delta, contained = critical_interval_reference(jobs, None)
            return (a, b, delta, contained, True)

    rates: dict[int | str, float] = {}
    segments: dict[int | str, list[tuple[float, float]]] = {}
    remaining = {flow.id for flow in flows}
    rounds = 0

    while remaining:
        rounds += 1
        best_edge: Edge | None = None
        best: Candidate | None = None
        for edge in sorted(link_flows):
            if not link_flows[edge]:
                continue
            if cache[edge] is None:
                cache[edge] = link_candidate(edge)
            candidate = cache[edge]
            assert candidate is not None
            if best is None or candidate[2] > best[2] + 1e-15:
                best, best_edge = candidate, edge
        if best is None or best_edge is None:
            raise AssertionError(
                "flows remain but no link has queued flows"
            )  # pragma: no cover

        a, b, delta, critical_jobs, overlap_mode = best
        edf_jobs = []
        for job in critical_jobs:
            fid = job.id
            rate = delta / len(flow_edges[fid]) ** (1.0 / alpha)
            rates[fid] = rate
            # Execution time w_i / s_i = w'_i / delta.
            edf_jobs.append(
                EdfJob(
                    id=fid,
                    release=flows[fid].release,
                    deadline=flows[fid].deadline,
                    duration=virtual[fid] / delta,
                )
            )
        edf_blocked = () if overlap_mode else blocked[best_edge].segments()
        try:
            placed = edf_schedule(edf_jobs, blocked=edf_blocked)
        except InfeasibleError:
            # Fragmented availability can defeat EDF even when the total
            # available time suffices; retry on raw time (overlap mode).
            try:
                placed = edf_schedule(edf_jobs, blocked=())
            except InfeasibleError as exc:
                raise InfeasibleError(
                    f"Most-Critical-First: EDF failed inside critical "
                    f"interval [{a:g}, {b:g}] on link {best_edge!r}: {exc}"
                ) from exc

        touched: set[Edge] = set()
        for job in critical_jobs:
            fid = job.id
            segments[fid] = placed[fid]
            remaining.discard(fid)
            for edge in flow_edges[fid]:
                link_flows[edge].discard(fid)
                blocked[edge].add_many(placed[fid])
                touched.add(edge)
        for edge in touched:
            cache[edge] = None

    flow_schedules = []
    for flow in flows:
        fs_segments = tuple(
            Segment(start=s, end=e, rate=rates[flow.id])
            for s, e in segments[flow.id]
        )
        flow_schedules.append(
            FlowSchedule(flow=flow, path=flow_paths[flow.id], segments=fs_segments)
        )
    return DcfsResult(
        schedule=Schedule(flow_schedules), rates=rates, rounds=rounds
    )
