"""Core algorithms: DCFS (Algorithm 1), DCFSR (Algorithm 2), baselines."""

from repro.core.baselines import (
    BaselineResult,
    ecmp_mcf,
    full_rate_sp,
    greedy_marginal_routing,
    sp_mcf,
)
from repro.core.dcfs import DcfsResult, solve_dcfs, solve_dcfs_reference
from repro.core.dcfsr import (
    DcfsrResult,
    RelaxationPipeline,
    relaxation_weights,
    round_schedule,
    round_schedule_deterministic,
    round_schedule_deterministic_reference,
    round_schedule_reference,
    solve_dcfsr,
)
from repro.core.exact import (
    ExactResult,
    exact_parallel_assignment_energy,
    solve_dcfsr_exact,
)
from repro.core.lower_bound import fractional_lower_bound
from repro.core.online import solve_online_density
from repro.core.relaxation import (
    IntervalSolution,
    RelaxationResult,
    solve_relaxation,
)

__all__ = [
    "DcfsResult",
    "solve_dcfs",
    "solve_dcfs_reference",
    "DcfsrResult",
    "RelaxationPipeline",
    "solve_dcfsr",
    "relaxation_weights",
    "round_schedule",
    "round_schedule_deterministic",
    "round_schedule_reference",
    "round_schedule_deterministic_reference",
    "fractional_lower_bound",
    "solve_online_density",
    "BaselineResult",
    "sp_mcf",
    "ecmp_mcf",
    "greedy_marginal_routing",
    "full_rate_sp",
    "ExactResult",
    "solve_dcfsr_exact",
    "exact_parallel_assignment_energy",
    "IntervalSolution",
    "RelaxationResult",
    "solve_relaxation",
]
