"""Online density scheduling — the paper's future-work direction.

The paper's algorithms are offline: they see the whole flow set before
deciding anything.  A deployable scheduler sees each flow only at its
release time.  This module implements the natural online policy:

* when flow ``j_i`` arrives, compute each link's *expected* marginal cost
  over the flow's span — the envelope derivative evaluated at the link's
  average already-committed load during ``[r_i, d_i]``;
* route ``j_i`` on the cheapest path under those weights (Dijkstra);
* commit ``j_i`` at its density ``D_i`` for its whole span (the
  minimum-energy constant rate, by Lemma 1/2 applied to the flow alone).

Decisions are irrevocable, exactly like per-flow routing in a real fabric.
The ``online_ablation`` experiment quantifies the "price of not knowing
the future" against offline Random-Schedule and the clairvoyant lower
bound.

The hot path runs on the array-native routing core (DESIGN.md §7): the
per-edge average load over each arriving flow's span comes from an
incremental :class:`~repro.routing.fastpath.LoadLedger` (a commit touches
only its own path edges; span-window corrections are one vectorized pass
per arrival) instead of an O(E x segments) rebuild of per-edge
:class:`~repro.scheduling.timeline.PiecewiseConstant` profiles, and
routing goes through a :class:`~repro.routing.fastpath.FastRouter`
(cached bidirectional Dijkstra over the topology's CSR adjacency).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import BaselineResult
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.routing.costs import envelope_cost
from repro.routing.fastpath import FastRouter, LoadLedger
from repro.scheduling.schedule import FlowSchedule, Schedule, Segment
from repro.topology.base import Topology

__all__ = ["solve_online_density"]


def solve_online_density(
    flows: FlowSet, topology: Topology, power: PowerModel
) -> BaselineResult:
    """Run the online density scheduler over the flows in release order.

    Ties in release time are broken by flow id (deterministic and
    adversary-agnostic).  Returns a :class:`BaselineResult` named
    ``"Online+Density"``; every deadline is met by construction (each flow
    finishes exactly at its deadline at rate ``D_i``).
    """
    flows.validate_against(topology)
    cost = envelope_cost(power)
    router = FastRouter(topology)
    ledger = LoadLedger(topology)
    order = sorted(flows, key=lambda f: (f.release, str(f.id)))
    paths: dict[int | str, tuple[str, ...]] = {}
    flow_schedules = []

    for flow in order:
        loads = ledger.loads(flow.release, flow.deadline)
        router.set_marginal(np.maximum(cost.derivative(loads), 1e-12))
        path, edge_ids = router.route(flow.src, flow.dst)
        paths[flow.id] = path
        ledger.commit(edge_ids, flow.release, flow.deadline, flow.density)
        flow_schedules.append(
            FlowSchedule(
                flow=flow,
                path=path,
                segments=(
                    Segment(
                        start=flow.release,
                        end=flow.deadline,
                        rate=flow.density,
                    ),
                ),
            )
        )

    schedule = Schedule(flow_schedules)
    t0, t1 = flows.horizon
    return BaselineResult(
        name="Online+Density",
        schedule=schedule,
        energy=schedule.energy(power, horizon=(t0, t1)),
        paths=paths,
    )
