"""Baseline algorithms for DCFSR.

* :func:`sp_mcf` — the paper's Figure-2 comparator: deterministic
  shortest-path routing followed by optimal Most-Critical-First rate
  assignment.  "As SP is usually adopted, SP+MCF gives the lower bound of
  the energy consumption by SP routing, which represents the normal energy
  consumption in data centers."
* :func:`greedy_marginal_routing` — a natural energy-aware heuristic
  (beyond the paper): route flows one by one, each on the cheapest path
  under the marginal envelope cost of the density loads placed so far,
  then run Most-Critical-First.  Used in the ablation benchmarks to locate
  Random-Schedule between "oblivious" and "clairvoyant" routing.
* :func:`full_rate_sp` — the no-speed-scaling strawman: shortest paths,
  every flow blasts at link capacity as early as possible.  Quantifies how
  much energy speed scaling itself saves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.dcfs import DcfsResult, solve_dcfs
from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.routing.costs import envelope_cost
from repro.scheduling.edf import EdfJob, edf_schedule
from repro.scheduling.schedule import (
    EnergyBreakdown,
    FlowSchedule,
    Schedule,
    Segment,
)
from repro.topology.base import Topology, path_edges

__all__ = [
    "BaselineResult",
    "sp_mcf",
    "ecmp_mcf",
    "greedy_marginal_routing",
    "full_rate_sp",
]

Path = tuple[str, ...]


@dataclass(frozen=True)
class BaselineResult:
    """A baseline's schedule, its energy, and the routes it chose."""

    name: str
    schedule: Schedule
    energy: EnergyBreakdown
    paths: Mapping[int | str, Path]
    dcfs: DcfsResult | None = None


def _routed_mcf(
    name: str,
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    paths: dict[int | str, Path],
) -> BaselineResult:
    result = solve_dcfs(flows, topology, paths, power)
    t0 = min(f.release for f in flows)
    t1 = max(f.deadline for f in flows)
    return BaselineResult(
        name=name,
        schedule=result.schedule,
        energy=result.schedule.energy(power, horizon=(t0, t1)),
        paths=paths,
        dcfs=result,
    )


def sp_mcf(
    flows: FlowSet, topology: Topology, power: PowerModel
) -> BaselineResult:
    """Shortest-path routing + optimal Most-Critical-First scheduling."""
    flows.validate_against(topology)
    paths = {
        flow.id: topology.shortest_path(flow.src, flow.dst) for flow in flows
    }
    return _routed_mcf("SP+MCF", flows, topology, power, paths)


def ecmp_mcf(
    flows: FlowSet, topology: Topology, power: PowerModel, seed: int = 0
) -> BaselineResult:
    """Per-flow ECMP routing + optimal Most-Critical-First scheduling.

    The production-realistic middle ground between oblivious shortest
    paths and the relaxation-guided routing of Random-Schedule: flows hash
    uniformly over their equal-cost shortest-path group, then rates are
    chosen optimally.
    """
    from repro.routing.paths import ecmp_route

    flows.validate_against(topology)
    paths = ecmp_route(flows, topology, seed=seed)
    return _routed_mcf("ECMP+MCF", flows, topology, power, paths)


def greedy_marginal_routing(
    flows: FlowSet, topology: Topology, power: PowerModel
) -> BaselineResult:
    """Sequential marginal-cost routing + Most-Critical-First.

    Flows are routed in decreasing density order; each flow picks the
    cheapest path under the marginal envelope cost of the loads committed
    so far (loads approximate each flow's footprint by its density on every
    link of its chosen path, ignoring span overlap — a deliberately cheap
    surrogate).  Because loads only grow, the marginal only grows, so the
    :class:`~repro.routing.fastpath.FastRouter` path cache stays valid for
    every endpoint pair whose cached path the last commit did not touch.
    """
    flows.validate_against(topology)
    cost = envelope_cost(power)
    loads = np.zeros(topology.num_edges)
    paths: dict[int | str, Path] = {}
    order = sorted(flows, key=lambda f: (-f.density, str(f.id)))
    from repro.routing.fastpath import FastRouter

    router = FastRouter(topology)
    router.set_marginal(np.maximum(cost.derivative(loads), 1e-12))
    for flow in order:
        path, edge_ids = router.route(flow.src, flow.dst)
        paths[flow.id] = path
        loads[edge_ids] += flow.density
        router.bump_edges(
            edge_ids, np.maximum(cost.derivative(loads[edge_ids]), 1e-12)
        )
    return _routed_mcf("Greedy+MCF", flows, topology, power, paths)


def full_rate_sp(
    flows: FlowSet, topology: Topology, power: PowerModel
) -> BaselineResult:
    """No speed scaling: shortest paths, transmit at capacity, EDF order.

    Each link forwards its flows one at a time at full rate ``C`` (the
    classic race-to-idle), ordered by EDF on each flow's *bottleneck* link
    serialization.  We approximate the multi-link contention by EDF-packing
    each flow's transmission window on its most-loaded link and reusing the
    same window on the whole path — consistent with the virtual-circuit
    accounting used everywhere else.

    Raises :class:`ValidationError` when the power model has no finite
    capacity (full rate would be unbounded).
    """
    if not math.isfinite(power.capacity):
        raise ValidationError("full_rate_sp requires a finite link capacity")
    flows.validate_against(topology)
    paths = {
        flow.id: topology.shortest_path(flow.src, flow.dst) for flow in flows
    }
    # Serialize per most-loaded link: greedily EDF-pack all flows on a
    # single virtual resource per link, then each flow occupies its path
    # during its window.  A simple global EDF pass per link is enough for a
    # strawman; genuinely infeasible packings surface as InfeasibleError.
    link_jobs: dict = {}
    for flow in flows:
        duration = flow.size / power.capacity
        if duration > flow.span_length * (1.0 + 1e-9):
            raise ValidationError(
                f"flow {flow.id!r} cannot finish even at full rate"
            )
        for edge in path_edges(paths[flow.id]):
            link_jobs.setdefault(edge, []).append(
                EdfJob(
                    id=flow.id,
                    release=flow.release,
                    deadline=flow.deadline,
                    duration=duration,
                )
            )
    # Pick each flow's window on its most contended link.
    contention = {edge: sum(j.duration for j in jobs) for edge, jobs in link_jobs.items()}
    windows: dict[int | str, list[tuple[float, float]]] = {}
    for flow in flows:
        edges = path_edges(paths[flow.id])
        bottleneck = max(edges, key=lambda e: (contention[e], e))
        placed = edf_schedule(link_jobs[bottleneck])
        windows[flow.id] = placed[flow.id]

    flow_schedules = []
    for flow in flows:
        segments = tuple(
            Segment(start=s, end=e, rate=power.capacity)
            for s, e in windows[flow.id]
        )
        flow_schedules.append(
            FlowSchedule(flow=flow, path=paths[flow.id], segments=segments)
        )
    schedule = Schedule(flow_schedules)
    t0 = min(f.release for f in flows)
    t1 = max(f.deadline for f in flows)
    return BaselineResult(
        name="FullRate-SP",
        schedule=schedule,
        energy=schedule.energy(power, horizon=(t0, t1)),
        paths=paths,
    )
