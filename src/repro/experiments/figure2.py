"""Figure 2 reproduction: approximation performance of Random-Schedule.

Paper protocol (Section V-C):

* topology: a DCN with 80 switches and 128 servers — a k = 8 fat-tree;
* horizon [1, 100]; releases/deadlines uniform in the horizon;
* flow sizes drawn from N(10, 3);
* number of flows swept over {40, 80, 120, 160, 200};
* power functions f(x) = x^2 and f(x) = x^4;
* three series, all normalized by the fractional lower bound (LB = 1):
  Random-Schedule (RS) and Shortest-Path + Most-Critical-First (SP+MCF);
* 10 independent runs per point.

Expected shape (the paper plots, but does not tabulate, the values): RS
stays within a small factor of LB and *flattens/decreases* as flows are
added (more flows -> denser relaxation -> rounding concentrates), while
SP+MCF keeps *growing* because shortest paths pile flows onto the same few
links and the superadditive power function punishes the stacking.

Run as a module for the full-scale experiment::

    python -m repro.experiments.figure2 --alpha 2 --runs 10

The pytest-benchmark harness (`benchmarks/bench_figure2.py`) runs a
reduced-runs version of the same code.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import Table
from repro.experiments.harness import ComparisonPoint, single_run
from repro.experiments.parallel import available_parallelism, grouped_map
from repro.flows.workloads import paper_workload
from repro.power.model import PowerModel
from repro.topology.fattree import fat_tree

__all__ = ["Figure2Result", "run_figure2", "figure2_table"]

#: The paper's sweep over the number of flows.
PAPER_FLOW_COUNTS: tuple[int, ...] = (40, 80, 120, 160, 200)


@dataclass(frozen=True)
class Figure2Result:
    """One Figure 2 panel (one alpha): a series of comparison points."""

    alpha: float
    points: tuple[ComparisonPoint, ...]

    def series(self, name: str) -> list[float]:
        """The plotted series (mean normalized energy) for one algorithm."""
        return [p.mean_ratio(name) for p in self.points]


def run_figure2(
    alpha: float = 2.0,
    flow_counts: Sequence[int] = PAPER_FLOW_COUNTS,
    runs: int = 10,
    fat_tree_k: int = 8,
    horizon: tuple[float, float] = (1.0, 100.0),
    base_seed: int = 0,
    fw_max_iterations: int = 40,
    fw_gap_tolerance: float = 3e-3,
    jobs: int = 1,
) -> Figure2Result:
    """Regenerate one panel of Figure 2.

    Defaults reproduce the paper's full-scale setting; smaller
    ``fat_tree_k``/``runs`` give fast smoke versions for CI.  With
    ``jobs > 1`` the whole (flow-count, run) grid fans out over a process
    pool — the deterministic per-task seeding makes the result identical
    to the serial sweep.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel(sigma=0.0, mu=1.0, alpha=alpha)

    def one(n: int, run: int) -> dict[str, float]:
        return single_run(
            topology,
            power,
            workload_factory=lambda seed: paper_workload(
                topology, n, horizon=horizon, seed=seed
            ),
            seed=base_seed + 1000 * run,
            fw_max_iterations=fw_max_iterations,
            fw_gap_tolerance=fw_gap_tolerance,
        )

    points = []
    for n, chunk in zip(flow_counts, grouped_map(one, flow_counts, runs, jobs)):
        points.append(
            ComparisonPoint(
                label=str(n),
                runs=runs,
                ratios={
                    name: tuple(r[name] for r in chunk) for name in chunk[0]
                },
            )
        )
    return Figure2Result(alpha=alpha, points=tuple(points))


def figure2_table(result: Figure2Result) -> Table:
    """Render a Figure 2 panel as the table of its plotted series."""
    table = Table(
        title=(
            f"Figure 2 (f(x) = x^{result.alpha:g}): normalized energy vs "
            f"number of flows (LB = 1)"
        ),
        columns=("flows", "LB", "RS mean", "RS std", "SP+MCF mean", "SP+MCF std"),
    )
    for point in result.points:
        table.add_row(
            point.label,
            1.0,
            point.mean_ratio("RS"),
            point.std_ratio("RS"),
            point.mean_ratio("SP+MCF"),
            point.std_ratio("SP+MCF"),
        )
    return table


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, default=2.0, choices=None)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--fat-tree-k", type=int, default=8)
    parser.add_argument(
        "--flows", type=int, nargs="+", default=list(PAPER_FLOW_COUNTS)
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", type=str, default=None, help="write CSV here")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the (point, run) fan-out "
             "(0 = all cores, 1 = serial)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else available_parallelism()

    result = run_figure2(
        alpha=args.alpha,
        flow_counts=tuple(args.flows),
        runs=args.runs,
        fat_tree_k=args.fat_tree_k,
        base_seed=args.seed,
        jobs=jobs,
    )
    table = figure2_table(result)
    print(table.render())
    if args.csv:
        table.save_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
