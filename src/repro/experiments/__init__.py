"""Experiments: the paper's Figure 2 and the library's ablations."""

from repro.experiments.ablations import (
    churn_ablation,
    churn_correlated_ablation,
    failure_ablation,
    lambda_ablation,
    online_ablation,
    rounding_ablation,
    rounding_mode_ablation,
    sigma_ablation,
    topology_ablation,
)
from repro.experiments.approximation import approximation_study
from repro.experiments.figure2 import (
    PAPER_FLOW_COUNTS,
    Figure2Result,
    figure2_table,
    run_figure2,
)
from repro.experiments.harness import ComparisonPoint, run_comparison, single_run
from repro.experiments.parallel import available_parallelism, parallel_map

__all__ = [
    "ComparisonPoint",
    "run_comparison",
    "single_run",
    "parallel_map",
    "available_parallelism",
    "Figure2Result",
    "run_figure2",
    "figure2_table",
    "PAPER_FLOW_COUNTS",
    "sigma_ablation",
    "lambda_ablation",
    "rounding_ablation",
    "rounding_mode_ablation",
    "topology_ablation",
    "failure_ablation",
    "online_ablation",
    "churn_ablation",
    "churn_correlated_ablation",
    "approximation_study",
]
