"""Process-parallel fan-out for the experiment harness.

Experiment sweeps decompose into independent, deterministically seeded
(sweep-point, run-seed) tasks, which :func:`parallel_map` distributes over
a ``fork``-based process pool.  Fork inheritance is what makes this work
ergonomically: the task callable (typically a closure over a topology, a
power model and a workload factory) never crosses a pipe — workers inherit
it through a module-level registry populated in the parent right before
the pool starts, and only the picklable *items* and *results* are
serialized.

Fallbacks keep behavior identical everywhere: with ``jobs <= 1``, a single
item, on platforms whose default start method is not ``fork`` (macOS and
Windows — fork is technically *available* on macOS but CPython defaults
away from it because forking after Objective-C/BLAS initialization is
unsafe there), or when already inside a daemonic pool worker (nested
parallelism), the map degrades to a plain serial loop.  Results always
come back in input order, so a parallel sweep is bit-identical to its
serial counterpart.

:func:`worker_slots` extends the model across *simultaneous* maps: the
``--which all`` runner drives every ablation from its own thread, each
``parallel_map`` call still forks its own (closure-inheriting) pool, and
a fork-inherited semaphore caps the number of tasks *executing* at once
— one shared pool of execution slots, so tail ablations queue work the
moment a slot frees instead of idling behind earlier ablations.

:class:`WorkerGroup` is the *stateful* counterpart for long-lived
services: one process per worker, built once and messaged many times,
each owning durable state (a warm relaxation session per topology shard)
that a stateless pool would have to rebuild on every call.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.errors import ValidationError

__all__ = [
    "parallel_map",
    "grouped_map",
    "available_parallelism",
    "worker_slots",
    "WorkerGroup",
    "WorkerCrash",
]


class WorkerCrash(RuntimeError):
    """A :class:`WorkerGroup` worker died (or timed out) with work pending.

    Distinct from the ``RuntimeError`` a worker ships back when its
    *handler* raises: a crash means the process itself is gone — the pipe
    hit EOF, a send found it closed, or a bounded :meth:`WorkerGroup.
    collect` expired.  The pending count is left untouched, so a caller
    holding its own ledger of submitted work can
    :meth:`~WorkerGroup.restart` the worker and resubmit.
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"worker {index} crashed: {reason}")
        self.index = index

T = TypeVar("T")
R = TypeVar("R")

#: Parent-side registry of task callables, inherited by forked workers.
_WORK: dict[int, Callable] = {}
_TOKENS = itertools.count()

#: Fork-inherited execution-slot semaphore (see :func:`worker_slots`).
_SLOTS = None

#: Serializes pool construction when maps run on several threads, so the
#: fork happens while no sibling map is mid-fork.
_POOL_CREATE_LOCK = threading.Lock()


def _invoke(token: int, item):  # pragma: no cover - runs in the worker
    slots = _SLOTS
    if slots is None:
        return _WORK[token](item)
    with slots:
        return _WORK[token](item)


@contextmanager
def worker_slots(jobs: int) -> Iterator[None]:
    """Cap concurrently *executing* tasks across simultaneous maps.

    Inside the context every :func:`parallel_map` worker acquires one of
    ``jobs`` shared slots around each task, so any number of concurrent
    maps (e.g. one per ablation, driven from threads) together behave
    like one shared ``jobs``-wide pool.  Idle workers beyond the cap just
    sleep on the semaphore.  The semaphore must exist before the pools
    fork — enter this context before starting the threads.  No-op on
    platforms whose default start method is not ``fork`` (the maps run
    serially there anyway).
    """
    global _SLOTS
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    if _SLOTS is not None:
        raise ValidationError("worker_slots does not nest")
    if mp.get_start_method() != "fork":
        yield
        return
    _SLOTS = mp.get_context("fork").BoundedSemaphore(jobs)
    try:
        yield
    finally:
        _SLOTS = None


def available_parallelism() -> int:
    """Usable worker count (scheduler affinity when exposed, else cores)."""
    try:
        import os

        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, mp.cpu_count())


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int = 1
) -> list[R]:
    """Apply ``fn`` to every item, fanning out over ``jobs`` processes.

    Parameters
    ----------
    fn:
        Task callable.  May be any callable (closures and lambdas
        included) — it is inherited via fork, not pickled.  It must not
        depend on mutable global state changed after the call starts.
    items:
        Task inputs; each must be picklable (seeds, labels, small tuples).
    jobs:
        Maximum worker processes.  ``1`` (or fewer items than 2, or a
        platform that does not default to ``fork``) runs serially
        in-process.

    Returns results in input order.  A worker exception propagates to the
    caller (remaining tasks may be cancelled), exactly like the serial
    loop.
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    task_list = list(items)
    serial = (
        jobs == 1
        or len(task_list) <= 1
        or mp.get_start_method() != "fork"
        or mp.current_process().daemon
    )
    if serial:
        return [fn(item) for item in task_list]
    token = next(_TOKENS)
    _WORK[token] = fn
    try:
        ctx = mp.get_context("fork")
        with _POOL_CREATE_LOCK:
            pool = ctx.Pool(processes=min(jobs, len(task_list)))
        try:
            return pool.starmap(_invoke, [(token, item) for item in task_list])
        finally:
            pool.terminate()
    finally:
        del _WORK[token]


#: Parent-side registry of WorkerGroup state factories (fork-inherited).
_GROUP_WORK: dict[int, Callable[[int], Callable]] = {}

_STOP = "__worker_group_stop__"


def _group_worker_main(token: int, index: int, conn) -> None:
    """Worker process body: build state post-fork, then serve messages.

    Runs until the parent sends the stop sentinel or the pipe closes.
    Exceptions inside the handler are shipped back as ``("err", repr,
    traceback_text)`` instead of killing the worker, so one poisoned
    window does not take the whole service down.
    """
    # pragma: no cover — executes in the forked child.
    import traceback

    try:
        handler = _GROUP_WORK[token](index)
    except BaseException as exc:  # noqa: BLE001 - report builder failures
        conn.send(("err", repr(exc), traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))  # handshake: state built
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        if msg == _STOP:
            break
        try:
            conn.send(("ok", handler(msg)))
        except BaseException as exc:  # noqa: BLE001 - ship, don't die
            conn.send(("err", repr(exc), traceback.format_exc()))
    conn.close()


class WorkerGroup:
    """``n`` long-lived workers, each owning durable per-worker state.

    Unlike :func:`parallel_map` (stateless fan-out, fresh pool per call)
    a worker group keeps one process per worker alive across any number
    of messages, so state that is expensive to warm — a
    :class:`~repro.routing.mcflow.RelaxationSession` mid-replay — lives
    where the work happens.  ``factory(i)`` is called *inside* worker
    ``i`` right after the fork and returns the message handler; the
    factory itself is inherited through the same fork-time registry as
    :func:`parallel_map` tasks, so closures over topologies and power
    models never cross a pipe — only messages and results do.

    :meth:`submit` is asynchronous (returns immediately);
    :meth:`collect` blocks for that worker's next pending result.
    Submitting to several workers before collecting any is what overlaps
    their work — the sharded replay engine's window pipelining.

    On platforms without ``fork`` (or nested inside a daemonic pool
    worker) the group degrades to in-process handlers with a per-worker
    result queue: submissions execute immediately in :meth:`submit`, so
    results and their ordering are identical, just serial.
    """

    def __init__(self, factory: Callable[[int], Callable], n: int) -> None:
        if n < 1:
            raise ValidationError(f"worker group needs n >= 1, got {n}")
        self._n = n
        self._factory = factory  # kept for restart()
        self._pending = [0] * n
        self._closed = False
        self._serial = (
            mp.get_start_method() != "fork" or mp.current_process().daemon
        )
        if self._serial:
            self._handlers = [factory(i) for i in range(n)]
            self._results: list[list] = [[] for _ in range(n)]
            return
        self._conns = []
        self._procs = []
        try:
            token = next(_TOKENS)
            _GROUP_WORK[token] = factory
            try:
                with _POOL_CREATE_LOCK:
                    for index in range(n):
                        self._spawn(index, token, replace=False)
            finally:
                del _GROUP_WORK[token]
            for index, conn in enumerate(self._conns):
                self._receive(index, conn.recv())  # factory handshake
        except BaseException:
            # A failed spawn or handshake must not leak the workers that
            # DID start: reap them before re-raising.
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            for conn in self._conns:
                conn.close()
            for proc in self._procs:
                proc.join(timeout=5.0)
            raise

    def _spawn(self, index: int, token: int, replace: bool) -> None:
        """Fork one worker process (factory token must be registered)."""
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_group_worker_main,
            args=(token, index, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if replace:
            self._conns[index] = parent_conn
            self._procs[index] = proc
        else:
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def serial(self) -> bool:
        """True when the group runs in-process (no fork available)."""
        return self._serial

    def _receive(self, index: int, reply):
        status, *rest = reply
        if status == "err":
            detail, tb = rest
            raise RuntimeError(
                f"worker {index} failed: {detail}\n{tb}"
            )
        return rest[0]

    def submit(self, index: int, msg) -> None:
        """Queue ``msg`` for worker ``index`` (non-blocking).

        Raises :class:`WorkerCrash` when the worker is dead (killed or
        exited); the message is NOT counted as pending in that case.
        """
        if self._closed:
            raise ValidationError("worker group is closed")
        if self._serial:
            handler = self._handlers[index]
            if handler is None:
                raise WorkerCrash(index, "worker was killed")
            self._pending[index] += 1
            self._results[index].append(handler(msg))
            return
        try:
            self._conns[index].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(index, f"submit failed ({exc!r})") from exc
        self._pending[index] += 1

    def collect(self, index: int, timeout: float | None = None):
        """Block for worker ``index``'s oldest pending result.

        ``timeout`` (seconds; fork mode only — serial results are already
        computed) bounds the wait.  A dead pipe or an expired wait raises
        :class:`WorkerCrash` WITHOUT decrementing the pending count — the
        caller decides what to resubmit after :meth:`restart`.
        """
        if self._pending[index] <= 0:
            raise ValidationError(f"worker {index} has no pending work")
        if self._serial:
            if self._handlers[index] is None:
                raise WorkerCrash(index, "worker was killed")
            self._pending[index] -= 1
            return self._results[index].pop(0)
        conn = self._conns[index]
        try:
            if timeout is not None and not conn.poll(timeout):
                raise WorkerCrash(
                    index, f"no heartbeat within {timeout:g}s"
                )
            reply = conn.recv()
        except WorkerCrash:
            raise
        except (EOFError, OSError) as exc:
            raise WorkerCrash(index, f"pipe closed ({exc!r})") from exc
        self._pending[index] -= 1
        return self._receive(index, reply)

    def pending(self, index: int) -> int:
        """Results submitted to worker ``index`` and not yet collected."""
        return self._pending[index]

    def alive(self, index: int) -> bool:
        """True while worker ``index`` can take messages."""
        if self._serial:
            return self._handlers[index] is not None
        return self._procs[index].is_alive()

    def kill(self, index: int) -> None:
        """Hard-kill worker ``index`` (crash injection for fault drills).

        Its pending results are unrecoverable; :meth:`collect` raises
        :class:`WorkerCrash` until :meth:`restart` respawns it.  In
        serial mode the handler is dropped, which models the same loss.
        """
        if self._serial:
            self._handlers[index] = None
            self._results[index] = []
            return
        proc = self._procs[index]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        self._conns[index].close()

    def restart(self, index: int) -> None:
        """Respawn worker ``index`` with fresh factory state.

        Anything it had pending is forfeited (the pending count resets to
        zero); the caller resubmits whatever it still needs — restoring a
        checkpoint first, if it kept one.
        """
        if self._closed:
            raise ValidationError("worker group is closed")
        self._pending[index] = 0
        if self._serial:
            self._handlers[index] = self._factory(index)
            self._results[index] = []
            return
        proc = self._procs[index]
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        self._conns[index].close()
        token = next(_TOKENS)
        _GROUP_WORK[token] = self._factory
        try:
            with _POOL_CREATE_LOCK:
                self._spawn(index, token, replace=True)
        finally:
            del _GROUP_WORK[token]
        self._receive(index, self._conns[index].recv())  # factory handshake

    def broadcast(self, msg) -> list:
        """Send ``msg`` to every worker and collect all replies in order."""
        for index in range(self._n):
            self.submit(index, msg)
        return [self.collect(index) for index in range(self._n)]

    def close(self) -> None:
        """Stop every worker (idempotent); pending results are dropped."""
        if self._closed:
            return
        self._closed = True
        if self._serial:
            self._handlers = []
            self._results = []
            return
        for conn in self._conns:
            try:
                conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def grouped_map(
    fn: Callable[[T, int], R],
    points: Iterable[T],
    runs: int,
    jobs: int = 1,
) -> list[list[R]]:
    """Fan ``fn(point, run)`` over the (point, run) grid and regroup.

    The shared shape of every sweep-style experiment: flatten the grid so
    all cores stay busy even when ``runs`` is smaller than the pool, then
    return one ``runs``-long result list per point, in point order.
    Keeping the task order and the chunk stride in one place is what lets
    the callers' per-point aggregation stay trivially correct.
    """
    if runs < 1:
        raise ValidationError(f"runs must be >= 1, got {runs}")
    point_list = list(points)
    tasks = [(point, run) for point in point_list for run in range(runs)]
    flat = parallel_map(lambda task: fn(*task), tasks, jobs=jobs)
    return [
        flat[i * runs : (i + 1) * runs] for i in range(len(point_list))
    ]
