"""Experiment harness: run algorithm suites over seeded workloads.

Every experiment in this library boils down to: draw a workload, run some
algorithms, normalize energies by the fractional lower bound, aggregate
over repetitions.  :func:`run_comparison` packages that protocol (the
paper's Figure 2 protocol) once, so the figure and the ablations stay
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev
from typing import Callable, Mapping

import numpy as np

from repro.core.baselines import sp_mcf
from repro.core.dcfsr import solve_dcfsr
from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.topology.base import Topology

__all__ = ["ComparisonPoint", "run_comparison"]


@dataclass(frozen=True)
class ComparisonPoint:
    """Aggregated normalized energies at one sweep point.

    ``ratios`` maps an algorithm name to per-run ``Phi_f / LB`` values;
    ``mean_ratio``/``std_ratio`` aggregate them.
    """

    label: str
    runs: int
    ratios: Mapping[str, tuple[float, ...]]

    def mean_ratio(self, name: str) -> float:
        return mean(self.ratios[name])

    def std_ratio(self, name: str) -> float:
        values = self.ratios[name]
        return stdev(values) if len(values) > 1 else 0.0


def run_comparison(
    topology: Topology,
    power: PowerModel,
    workload_factory: Callable[[int], FlowSet],
    label: str,
    runs: int = 10,
    base_seed: int = 0,
    algorithms: Mapping[str, Callable] | None = None,
    fw_max_iterations: int = 40,
    fw_gap_tolerance: float = 3e-3,
) -> ComparisonPoint:
    """Run the Figure-2 protocol at one sweep point.

    Parameters
    ----------
    workload_factory:
        ``seed -> FlowSet``; invoked once per run with distinct seeds.
    algorithms:
        Extra algorithms beyond the default {RS, SP+MCF}: name ->
        ``fn(flows, topology, power) -> total energy``.  RS is always run
        (it supplies the lower bound).
    """
    if runs < 1:
        raise ValidationError(f"runs must be >= 1, got {runs}")
    ratio_lists: dict[str, list[float]] = {"RS": [], "SP+MCF": []}
    extra = dict(algorithms or {})
    for name in extra:
        ratio_lists[name] = []

    for run in range(runs):
        seed = base_seed + 1000 * run
        flows = workload_factory(seed)
        rs = solve_dcfsr(
            flows,
            topology,
            power,
            seed=np.random.default_rng(seed),
            fw_max_iterations=fw_max_iterations,
            fw_gap_tolerance=fw_gap_tolerance,
        )
        lb = rs.lower_bound
        ratio_lists["RS"].append(rs.energy.total / lb)
        sp = sp_mcf(flows, topology, power)
        ratio_lists["SP+MCF"].append(sp.energy.total / lb)
        for name, fn in extra.items():
            ratio_lists[name].append(fn(flows, topology, power) / lb)

    return ComparisonPoint(
        label=label,
        runs=runs,
        ratios={k: tuple(v) for k, v in ratio_lists.items()},
    )
