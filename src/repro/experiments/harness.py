"""Experiment harness: run algorithm suites over seeded workloads.

Every experiment in this library boils down to: draw a workload, run some
algorithms, normalize energies by the fractional lower bound, aggregate
over repetitions.  :func:`run_comparison` packages that protocol (the
paper's Figure 2 protocol) once, so the figure and the ablations stay
consistent.

Runs are independent and deterministically seeded, so the harness fans
them out over a process pool (:mod:`repro.experiments.parallel`) when
``jobs > 1`` — results are identical to the serial sweep, just faster.
:func:`single_run` is the unit of work; sweeps that want cross-point
parallelism (e.g. Figure 2) flatten their (point, run) grid onto it
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev
from typing import Callable, Mapping

import numpy as np

from repro.core.baselines import sp_mcf
from repro.core.dcfsr import solve_dcfsr
from repro.errors import ValidationError
from repro.experiments.parallel import parallel_map
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.topology.base import Topology

__all__ = ["ComparisonPoint", "run_comparison", "single_run"]


@dataclass(frozen=True)
class ComparisonPoint:
    """Aggregated normalized energies at one sweep point.

    ``ratios`` maps an algorithm name to per-run ``Phi_f / LB`` values;
    ``mean_ratio``/``std_ratio`` aggregate them.
    """

    label: str
    runs: int
    ratios: Mapping[str, tuple[float, ...]]

    def mean_ratio(self, name: str) -> float:
        return mean(self.ratios[name])

    def std_ratio(self, name: str) -> float:
        values = self.ratios[name]
        return stdev(values) if len(values) > 1 else 0.0


def single_run(
    topology: Topology,
    power: PowerModel,
    workload_factory: Callable[[int], FlowSet],
    seed: int,
    algorithms: Mapping[str, Callable] | None = None,
    fw_max_iterations: int = 40,
    fw_gap_tolerance: float = 3e-3,
) -> dict[str, float]:
    """One repetition of the Figure-2 protocol: algorithm -> ``Phi_f/LB``.

    Fully determined by its arguments (the rounding RNG is derived from
    ``seed``), which is what lets repetitions run in any order or process.
    """
    flows = workload_factory(seed)
    rs = solve_dcfsr(
        flows,
        topology,
        power,
        seed=np.random.default_rng(seed),
        fw_max_iterations=fw_max_iterations,
        fw_gap_tolerance=fw_gap_tolerance,
    )
    lb = rs.lower_bound
    ratios = {"RS": rs.energy.total / lb}
    sp = sp_mcf(flows, topology, power)
    ratios["SP+MCF"] = sp.energy.total / lb
    for name, fn in (algorithms or {}).items():
        ratios[name] = fn(flows, topology, power) / lb
    return ratios


def run_comparison(
    topology: Topology,
    power: PowerModel,
    workload_factory: Callable[[int], FlowSet],
    label: str,
    runs: int = 10,
    base_seed: int = 0,
    algorithms: Mapping[str, Callable] | None = None,
    fw_max_iterations: int = 40,
    fw_gap_tolerance: float = 3e-3,
    jobs: int = 1,
) -> ComparisonPoint:
    """Run the Figure-2 protocol at one sweep point.

    Parameters
    ----------
    workload_factory:
        ``seed -> FlowSet``; invoked once per run with distinct seeds.
    algorithms:
        Extra algorithms beyond the default {RS, SP+MCF}: name ->
        ``fn(flows, topology, power) -> total energy``.  RS is always run
        (it supplies the lower bound).
    jobs:
        Worker processes to spread the runs over (1 = serial; results are
        identical either way).
    """
    if runs < 1:
        raise ValidationError(f"runs must be >= 1, got {runs}")
    extra = dict(algorithms or {})

    def one(run: int) -> dict[str, float]:
        return single_run(
            topology,
            power,
            workload_factory,
            seed=base_seed + 1000 * run,
            algorithms=extra,
            fw_max_iterations=fw_max_iterations,
            fw_gap_tolerance=fw_gap_tolerance,
        )

    per_run = parallel_map(one, range(runs), jobs=jobs)

    names = ["RS", "SP+MCF", *extra]
    return ComparisonPoint(
        label=label,
        runs=runs,
        ratios={
            name: tuple(r[name] for r in per_run) for name in names
        },
    )
