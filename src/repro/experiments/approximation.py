"""True approximation quality: Random-Schedule vs the exact optimum.

Figure 2 normalizes by the fractional lower bound because the optimum is
intractable at scale — so its "ratios" are upper bounds on the real
approximation factor.  On tiny parallel-path instances the exact optimum
*is* computable (assignment enumeration), which lets us measure the real
ratio distribution and how much of the Figure-2 ratio is LB looseness
rather than RS suboptimality.
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence

import numpy as np

from repro.analysis.reporting import Table
from repro.core.dcfsr import solve_dcfsr
from repro.core.exact import solve_dcfsr_exact
from repro.errors import ValidationError
from repro.flows.flow import Flow, FlowSet
from repro.power.model import PowerModel
from repro.topology.simple import parallel_paths

__all__ = ["approximation_study"]


def _random_instance(
    num_flows: int, num_paths: int, seed: int
) -> tuple:
    rng = np.random.default_rng(seed)
    flows = []
    for i in range(num_flows):
        release = float(rng.uniform(0.0, 2.0))
        length = float(rng.uniform(0.5, 2.0))
        flows.append(
            Flow(
                id=i,
                src="src",
                dst="dst",
                size=float(rng.uniform(1.0, 6.0)),
                release=release,
                deadline=release + length,
            )
        )
    return parallel_paths(num_paths), FlowSet(flows)


def approximation_study(
    num_flows_list: Sequence[int] = (2, 3, 4),
    num_paths: int = 3,
    instances: int = 8,
    alpha: float = 2.0,
    base_seed: int = 0,
) -> Table:
    """Measure RS/OPT and LB/OPT on enumerable parallel-path instances.

    For each instance size, draws ``instances`` random workloads, computes
    the exact optimum (exhaustive path assignment + optimal DCFS), the
    Random-Schedule energy, and the fractional LB, and reports the mean
    and worst ratios.  ``RS/OPT`` is the *true* approximation factor;
    ``OPT/LB`` quantifies the lower bound's slack — together they decompose
    the Figure-2 normalization.
    """
    if instances < 1:
        raise ValidationError("need at least one instance per point")
    power = PowerModel(alpha=alpha)
    table = Table(
        title=(
            f"APPROX: true ratios on parallel-{num_paths} instances "
            f"(alpha = {alpha:g})"
        ),
        columns=(
            "flows", "instances", "RS/OPT mean", "RS/OPT max",
            "OPT/LB mean", "RS feasible",
        ),
    )
    for n in num_flows_list:
        rs_over_opt = []
        opt_over_lb = []
        feasible = 0
        for k in range(instances):
            topology, flows = _random_instance(
                n, num_paths, seed=base_seed + 997 * k + n
            )
            exact = solve_dcfsr_exact(flows, topology, power)
            rs = solve_dcfsr(flows, topology, power, seed=base_seed + k)
            rs_over_opt.append(rs.energy.total / exact.energy.total)
            opt_over_lb.append(exact.energy.total / rs.lower_bound)
            feasible += int(rs.capacity_feasible)
        table.add_row(
            n,
            instances,
            mean(rs_over_opt),
            max(rs_over_opt),
            mean(opt_over_lb),
            f"{feasible}/{instances}",
        )
    return table
