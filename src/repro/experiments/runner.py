"""CLI runner for the ablation suite.

Usage::

    python -m repro.experiments.runner --which sigma
    python -m repro.experiments.runner --which all --csv-dir results/
    python -m repro.experiments.runner --which all --jobs 8

``--jobs N`` fans each ablation's independent (sweep-point, run-seed)
tasks over ``N`` worker processes (``--jobs 0`` = all cores); tables are
identical to the serial run thanks to deterministic per-task seeding.
"""

from __future__ import annotations

import argparse
import os
from typing import Callable, Sequence

from repro.analysis.reporting import Table
from repro.experiments.parallel import available_parallelism
from repro.experiments.ablations import (
    failure_ablation,
    online_ablation,
    lambda_ablation,
    rounding_ablation,
    rounding_mode_ablation,
    sigma_ablation,
    topology_ablation,
    trace_ablation,
)

__all__ = ["main", "ABLATIONS"]

ABLATIONS: dict[str, Callable[..., Table]] = {
    "sigma": sigma_ablation,
    "lambda": lambda_ablation,
    "rounding": rounding_ablation,
    "rounding-mode": rounding_mode_ablation,
    "topology": topology_ablation,
    "failures": failure_ablation,
    "online": online_ablation,
    "traces": trace_ablation,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--which",
        choices=sorted(ABLATIONS) + ["all"],
        default="all",
        help="which ablation to run",
    )
    parser.add_argument(
        "--csv-dir", type=str, default=None, help="also write CSVs here"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per ablation (0 = all cores, 1 = serial)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else available_parallelism()

    names = sorted(ABLATIONS) if args.which == "all" else [args.which]
    for name in names:
        table = ABLATIONS[name](jobs=jobs)
        print(table.render())
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"ablation_{name}.csv")
            table.save_csv(path)
            print(f"wrote {path}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
