"""CLI runner for the ablation suite.

Usage::

    python -m repro.experiments.runner --which sigma
    python -m repro.experiments.runner --which all --csv-dir results/
    python -m repro.experiments.runner --which all --jobs 8

``--jobs N`` fans each ablation's independent (sweep-point, run-seed)
tasks over ``N`` worker processes (``--jobs 0`` = all cores); tables are
identical to the serial run thanks to deterministic per-task seeding.

With ``--which all`` the ablations share **one pool of N execution
slots** (:func:`repro.experiments.parallel.worker_slots`): every ablation
runs concurrently from its own thread and its tasks queue the moment a
slot frees, so tail ablations no longer idle the workers while earlier
ablations finish their stragglers.  Tables print in the same name order
as the serial run.
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro import kernels
from repro.analysis.reporting import Table
from repro.experiments.parallel import available_parallelism, worker_slots
from repro.experiments.ablations import (
    churn_ablation,
    churn_correlated_ablation,
    failure_ablation,
    online_ablation,
    lambda_ablation,
    lookahead_ablation,
    relax_replay_ablation,
    rounding_ablation,
    rounding_mode_ablation,
    sigma_ablation,
    topology_ablation,
    trace_ablation,
)

__all__ = ["main", "ABLATIONS", "run_ablations"]

ABLATIONS: dict[str, Callable[..., Table]] = {
    "sigma": sigma_ablation,
    "lambda": lambda_ablation,
    "rounding": rounding_ablation,
    "rounding-mode": rounding_mode_ablation,
    "topology": topology_ablation,
    "failures": failure_ablation,
    "online": online_ablation,
    "traces": trace_ablation,
    "relax-replay": relax_replay_ablation,
    "lookahead": lookahead_ablation,
    "churn": churn_ablation,
    "churn-correlated": churn_correlated_ablation,
}


def run_ablations(names: Sequence[str], jobs: int) -> dict[str, Table]:
    """Run the named ablations, sharing one slot pool when possible.

    With more than one ablation and ``jobs > 1`` on a fork platform, each
    ablation runs on its own thread while a fork-inherited semaphore caps
    concurrently executing tasks at ``jobs`` — the shared pool that keeps
    every worker busy across ablation boundaries.  Results are keyed by
    name; tables are identical to a serial run (deterministic per-task
    seeding, in-order result collection per map).
    """
    shared = (
        len(names) > 1 and jobs > 1 and mp.get_start_method() == "fork"
    )
    if not shared:
        return {name: ABLATIONS[name](jobs=jobs) for name in names}
    with worker_slots(jobs):
        with ThreadPoolExecutor(max_workers=len(names)) as executor:
            futures = {
                name: executor.submit(ABLATIONS[name], jobs=jobs)
                for name in names
            }
            return {name: future.result() for name, future in futures.items()}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--which",
        choices=sorted(ABLATIONS) + ["all"],
        default="all",
        help="which ablation to run",
    )
    parser.add_argument(
        "--csv-dir", type=str, default=None, help="also write CSVs here"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shared worker slots (0 = all cores, 1 = serial)",
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "compiled", "python"),
        default=None,
        help="kernel backend (repro.kernels): auto picks numba when "
        "importable; overrides REPRO_KERNELS",
    )
    args = parser.parse_args(argv)
    if args.kernels is not None:
        kernels.set_backend(args.kernels)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else available_parallelism()

    names = sorted(ABLATIONS) if args.which == "all" else [args.which]
    tables = run_ablations(names, jobs)
    for name in names:
        table = tables[name]
        print(table.render())
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"ablation_{name}.csv")
            table.save_csv(path)
            print(f"wrote {path}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
