"""Ablation experiments beyond the paper's Figure 2 (DESIGN.md ABL-*).

Each function regenerates one ablation series; the corresponding
``benchmarks/bench_ablation_*.py`` harness prints its table.

* :func:`sigma_ablation` — how the idle-power (power-down) term shifts the
  RS vs SP+MCF comparison.  With sigma > 0, consolidating flows onto fewer
  links pays twice: fewer active links *and* better amortized idle energy.
* :func:`lambda_ablation` — sensitivity to the interval-granularity factor
  ``lambda`` (Theorem 6's leading term): same workload shape, increasingly
  skewed interval lengths.
* :func:`rounding_ablation` — rounding variance: distribution of RS energy
  over repeated independent rounding draws from one relaxation.
* :func:`topology_ablation` — RS vs SP+MCF across structurally different
  DCN fabrics at matched scale.
* :func:`trace_ablation` — sliding-horizon replay of one generated arrival
  trace under the online policy, per-epoch DCFS, and the greedy baseline.
"""

from __future__ import annotations

from statistics import mean, stdev
from typing import Sequence

import numpy as np

from repro.analysis.reporting import Table
from repro.core.baselines import greedy_marginal_routing, sp_mcf
from repro.core.dcfsr import round_schedule, solve_dcfsr
from repro.core.relaxation import default_cost, solve_relaxation
from repro.experiments.harness import run_comparison
from repro.flows.flow import Flow, FlowSet
from repro.flows.intervals import TimeGrid
from repro.flows.workloads import paper_workload
from repro.power.model import PowerModel
from repro.routing.mcflow import FrankWolfeSolver
from repro.topology.base import Topology
from repro.traces import (
    EpochDcfsPolicy,
    GreedyDensityPolicy,
    OnlineDensityPolicy,
    PoissonProcess,
    ReplayEngine,
    TraceSpec,
    generate_trace,
    lognormal_sizes,
    proportional_slack,
)
from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.leafspine import leaf_spine
from repro.topology.random_graphs import jellyfish
from repro.topology.vl2 import vl2

__all__ = [
    "sigma_ablation",
    "lambda_ablation",
    "rounding_ablation",
    "rounding_mode_ablation",
    "topology_ablation",
    "failure_ablation",
    "online_ablation",
    "trace_ablation",
]


def sigma_ablation(
    sigmas: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    num_flows: int = 60,
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
) -> Table:
    """RS vs SP+MCF normalized energy as idle power sigma grows."""
    topology = fat_tree(fat_tree_k)
    table = Table(
        title="ABL-SIGMA: idle power vs normalized energy (LB = 1)",
        columns=("sigma", "RS mean", "SP+MCF mean", "RS/SP ratio"),
    )
    for sigma in sigmas:
        power = PowerModel(sigma=sigma, mu=1.0, alpha=2.0)
        point = run_comparison(
            topology,
            power,
            workload_factory=lambda seed: paper_workload(
                topology, num_flows, seed=seed
            ),
            label=f"sigma={sigma:g}",
            runs=runs,
            base_seed=base_seed,
        )
        rs, sp = point.mean_ratio("RS"), point.mean_ratio("SP+MCF")
        table.add_row(sigma, rs, sp, rs / sp)
    return table


def _skewed_workload(
    topology: Topology, num_flows: int, skew: float, seed: int
) -> FlowSet:
    """Workload whose interval lengths get progressively more skewed.

    ``skew = 0`` reproduces the uniform paper workload; larger skews
    concentrate breakpoints by raising uniform draws to a power, shrinking
    the smallest interval and inflating ``lambda``.
    """
    rng = np.random.default_rng(seed)
    hosts = topology.hosts
    flows = []
    for i in range(num_flows):
        while True:
            u = rng.uniform(0.0, 1.0, size=2) ** (1.0 + skew)
            a, b = sorted((1.0 + 99.0 * u).tolist())
            if b - a >= 1.0:
                break
        src, dst = (hosts[int(i)] for i in rng.choice(len(hosts), 2, replace=False))
        size = max(float(rng.normal(10.0, 3.0)), 1e-3)
        flows.append(Flow(id=i, src=src, dst=dst, size=size, release=a, deadline=b))
    return FlowSet(flows)


def lambda_ablation(
    skews: Sequence[float] = (0.0, 1.0, 2.0, 4.0),
    num_flows: int = 50,
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
) -> Table:
    """Does a larger lambda (Theorem 6 factor) hurt RS in practice?"""
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-LAMBDA: interval skew vs RS quality",
        columns=("skew", "mean lambda", "RS mean", "SP+MCF mean"),
    )
    for skew in skews:
        lambdas, rs_ratios, sp_ratios = [], [], []
        for run in range(runs):
            seed = base_seed + 1000 * run
            flows = _skewed_workload(topology, num_flows, skew, seed)
            lambdas.append(TimeGrid(flows).lam)
            rs = solve_dcfsr(flows, topology, power, seed=seed)
            rs_ratios.append(rs.energy.total / rs.lower_bound)
            sp = sp_mcf(flows, topology, power)
            sp_ratios.append(sp.energy.total / rs.lower_bound)
        table.add_row(skew, mean(lambdas), mean(rs_ratios), mean(sp_ratios))
    return table


def rounding_ablation(
    num_flows: int = 60,
    fat_tree_k: int = 4,
    draws: int = 30,
    seed: int = 0,
) -> Table:
    """Variance of Random-Schedule's energy across rounding draws.

    Solves the relaxation once, then redraws the rounding ``draws`` times.
    The spread quantifies how much the "repeat until feasible/lucky" loop
    can buy.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    flows = paper_workload(topology, num_flows, seed=seed)
    grid = TimeGrid(flows)
    solver = FrankWolfeSolver(topology, default_cost(power))
    relaxation = solve_relaxation(flows, solver, grid)
    lb = relaxation.lower_bound
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(draws):
        schedule, _w = round_schedule(flows, relaxation, rng)
        ratios.append(schedule.energy(power, horizon=grid.horizon).total / lb)
    table = Table(
        title=f"ABL-ROUND: {draws} rounding draws from one relaxation (LB = 1)",
        columns=("draws", "min", "mean", "max", "std"),
    )
    table.add_row(draws, min(ratios), mean(ratios), max(ratios), stdev(ratios))
    return table


def online_ablation(
    flow_counts: Sequence[int] = (20, 40, 60, 80),
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
) -> Table:
    """The price of being online: Online+Density vs RS vs SP+MCF.

    The online scheduler sees flows only at release time and commits
    irrevocably; offline Random-Schedule sees everything.  The gap between
    the two columns is the empirical cost of no clairvoyance.
    """
    from repro.core.online import solve_online_density

    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-ONLINE: normalized energy, online vs offline (LB = 1)",
        columns=("flows", "Online+Density", "RS (offline)", "SP+MCF"),
    )
    for n in flow_counts:
        point = run_comparison(
            topology,
            power,
            workload_factory=lambda seed, n=n: paper_workload(
                topology, n, seed=seed
            ),
            label=str(n),
            runs=runs,
            base_seed=base_seed,
            algorithms={
                "Online": lambda f, t, p: solve_online_density(
                    f, t, p
                ).energy.total
            },
        )
        table.add_row(
            n,
            point.mean_ratio("Online"),
            point.mean_ratio("RS"),
            point.mean_ratio("SP+MCF"),
        )
    return table


def trace_ablation(
    rate: float = 4.0,
    duration: float = 40.0,
    window: float = 8.0,
    fat_tree_k: int = 4,
    seed: int = 0,
) -> Table:
    """ABL-TRACE: one Poisson trace replayed under three serving policies.

    Unlike the offline ablations (which normalize by the fractional lower
    bound of each drawn instance), this is a *streaming* comparison: every
    policy sees the identical arrival trace through the sliding-horizon
    engine and the table reports what the replay actually measured —
    deadline-miss rate, total energy, and the peak stacked link rate.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    spec = TraceSpec(
        arrivals=PoissonProcess(rate),
        duration=duration,
        size_sampler=lognormal_sizes(1.0, 0.6),
        slack_model=proportional_slack(3.0, 1.0),
        seed=seed,
    )
    table = Table(
        title="ABL-TRACE: sliding-horizon replay of one Poisson trace",
        columns=(
            "policy", "flows", "windows", "miss rate", "energy", "peak rate",
        ),
    )
    for policy in (OnlineDensityPolicy(), EpochDcfsPolicy(), GreedyDensityPolicy()):
        report = ReplayEngine(topology, power, policy, window=window).run(
            generate_trace(topology, spec)
        )
        table.add_row(
            policy.name,
            report.flows_seen,
            report.windows,
            report.miss_rate,
            report.total_energy,
            report.peak_link_rate,
        )
    return table


def rounding_mode_ablation(
    num_flows: int = 60,
    fat_tree_k: int = 4,
    runs: int = 5,
    base_seed: int = 0,
) -> Table:
    """Random rounding (Algorithm 2) vs argmax-``w_bar`` derandomization.

    Both modes share the same relaxation per run; the table reports the
    normalized energies side by side.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-ROUND-MODE: random vs deterministic rounding (LB = 1)",
        columns=("run", "random", "deterministic"),
    )
    for run in range(runs):
        seed = base_seed + 1000 * run
        flows = paper_workload(topology, num_flows, seed=seed)
        random_result = solve_dcfsr(flows, topology, power, seed=seed)
        det_result = solve_dcfsr(
            flows, topology, power, seed=seed, rounding="deterministic"
        )
        lb = random_result.lower_bound
        table.add_row(
            run,
            random_result.energy.total / lb,
            det_result.energy.total / lb,
        )
    return table


def failure_ablation(
    failure_counts: Sequence[int] = (0, 2, 4, 8),
    num_flows: int = 50,
    fat_tree_k: int = 4,
    seed: int = 0,
) -> Table:
    """Normalized energy on progressively degraded fabrics.

    Fails switch-to-switch links (hosts stay connected), re-solves both
    algorithms on the survivor topology with the *same* workload, and
    normalizes by the degraded fabric's own lower bound.  Shows whether
    the RS advantage survives the loss of path diversity.
    """
    from repro.sim.failures import fail_links

    base = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    flows = paper_workload(base, num_flows, seed=seed)
    table = Table(
        title="ABL-FAIL: link failures vs normalized energy (per-fabric LB = 1)",
        columns=("failed links", "surviving links", "RS", "SP+MCF"),
    )
    for count in failure_counts:
        topology, _failed = fail_links(base, count, seed=seed + count)
        rs = solve_dcfsr(flows, topology, power, seed=seed)
        sp = sp_mcf(flows, topology, power)
        lb = rs.lower_bound
        table.add_row(
            count,
            topology.num_edges,
            rs.energy.total / lb,
            sp.energy.total / lb,
        )
    return table


def topology_ablation(
    num_flows: int = 50,
    runs: int = 3,
    base_seed: int = 0,
) -> Table:
    """RS vs SP+MCF vs Greedy+MCF across DCN fabrics of comparable size."""
    fabrics: list[Topology] = [
        fat_tree(4),
        bcube(4, 1),
        vl2(4, 4, hosts_per_tor=4),
        leaf_spine(4, 4, hosts_per_leaf=4),
        jellyfish(8, 3, hosts_per_switch=2, seed=1),
    ]
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-TOPO: normalized energy by fabric (LB = 1)",
        columns=("fabric", "hosts", "links", "RS", "SP+MCF", "Greedy+MCF"),
    )
    for topology in fabrics:
        point = run_comparison(
            topology,
            power,
            workload_factory=lambda seed, t=topology: paper_workload(
                t, num_flows, seed=seed
            ),
            label=topology.name,
            runs=runs,
            base_seed=base_seed,
            algorithms={
                "Greedy+MCF": lambda f, t, p: greedy_marginal_routing(
                    f, t, p
                ).energy.total
            },
        )
        table.add_row(
            topology.name,
            len(topology.hosts),
            topology.num_edges,
            point.mean_ratio("RS"),
            point.mean_ratio("SP+MCF"),
            point.mean_ratio("Greedy+MCF"),
        )
    return table
