"""Ablation experiments beyond the paper's Figure 2 (DESIGN.md ABL-*).

Each function regenerates one ablation series; the corresponding
``benchmarks/bench_ablation_*.py`` harness prints its table.

* :func:`sigma_ablation` — how the idle-power (power-down) term shifts the
  RS vs SP+MCF comparison.  With sigma > 0, consolidating flows onto fewer
  links pays twice: fewer active links *and* better amortized idle energy.
* :func:`lambda_ablation` — sensitivity to the interval-granularity factor
  ``lambda`` (Theorem 6's leading term): same workload shape, increasingly
  skewed interval lengths.
* :func:`rounding_ablation` — rounding variance: distribution of RS energy
  over repeated independent rounding draws from one relaxation.
* :func:`topology_ablation` — RS vs SP+MCF across structurally different
  DCN fabrics at matched scale.
* :func:`trace_ablation` — sliding-horizon replay of one generated arrival
  trace under the online policy, per-epoch DCFS, and the greedy baseline.

Every ablation takes a ``jobs`` parameter: its independent
(sweep-point, run-seed) tasks fan out over a fork-based process pool
(:mod:`repro.experiments.parallel`) with the existing deterministic
seeding, so parallel tables are identical to serial ones.
"""

from __future__ import annotations

from statistics import mean, stdev
from typing import Sequence

import numpy as np

from repro.analysis.reporting import Table
from repro.core.baselines import greedy_marginal_routing, sp_mcf
from repro.core.dcfsr import round_schedule, solve_dcfsr
from repro.core.relaxation import default_cost, solve_relaxation
from repro.errors import ValidationError
from repro.experiments.harness import single_run
from repro.experiments.parallel import grouped_map, parallel_map
from repro.flows.flow import Flow, FlowSet
from repro.flows.intervals import TimeGrid
from repro.flows.workloads import paper_workload
from repro.power.model import PowerModel
from repro.routing.mcflow import FrankWolfeSolver
from repro.topology.base import Topology
from repro.traces import (
    DiurnalProcess,
    EpochDcfsPolicy,
    GreedyDensityPolicy,
    LeastLoadedPolicy,
    LookaheadRelaxationPolicy,
    MarkovModulatedProcess,
    OnlineDensityPolicy,
    PoissonProcess,
    PowerOfTwoPolicy,
    RelaxationRoundingPolicy,
    ReplayEngine,
    TraceSpec,
    TrafficForecaster,
    generate_trace,
    lognormal_sizes,
    proportional_slack,
)
from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.leafspine import leaf_spine
from repro.topology.random_graphs import jellyfish
from repro.topology.simple import pod_mesh
from repro.topology.vl2 import vl2

__all__ = [
    "sigma_ablation",
    "lambda_ablation",
    "rounding_ablation",
    "rounding_mode_ablation",
    "topology_ablation",
    "failure_ablation",
    "online_ablation",
    "trace_ablation",
    "relax_replay_ablation",
    "lookahead_ablation",
    "churn_ablation",
    "churn_correlated_ablation",
]


def sigma_ablation(
    sigmas: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    num_flows: int = 60,
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
) -> Table:
    """RS vs SP+MCF normalized energy as idle power sigma grows."""
    topology = fat_tree(fat_tree_k)
    table = Table(
        title="ABL-SIGMA: idle power vs normalized energy (LB = 1)",
        columns=("sigma", "RS mean", "SP+MCF mean", "RS/SP ratio"),
    )

    def one(sigma: float, run: int) -> dict[str, float]:
        return single_run(
            topology,
            PowerModel(sigma=sigma, mu=1.0, alpha=2.0),
            workload_factory=lambda seed: paper_workload(
                topology, num_flows, seed=seed
            ),
            seed=base_seed + 1000 * run,
        )

    for sigma, chunk in zip(sigmas, grouped_map(one, sigmas, runs, jobs)):
        rs = mean(r["RS"] for r in chunk)
        sp = mean(r["SP+MCF"] for r in chunk)
        table.add_row(sigma, rs, sp, rs / sp)
    return table


def _skewed_workload(
    topology: Topology, num_flows: int, skew: float, seed: int
) -> FlowSet:
    """Workload whose interval lengths get progressively more skewed.

    ``skew = 0`` reproduces the uniform paper workload; larger skews
    concentrate breakpoints by raising uniform draws to a power, shrinking
    the smallest interval and inflating ``lambda``.
    """
    rng = np.random.default_rng(seed)
    hosts = topology.hosts
    flows = []
    for i in range(num_flows):
        while True:
            u = rng.uniform(0.0, 1.0, size=2) ** (1.0 + skew)
            a, b = sorted((1.0 + 99.0 * u).tolist())
            if b - a >= 1.0:
                break
        src, dst = (hosts[int(i)] for i in rng.choice(len(hosts), 2, replace=False))
        size = max(float(rng.normal(10.0, 3.0)), 1e-3)
        flows.append(Flow(id=i, src=src, dst=dst, size=size, release=a, deadline=b))
    return FlowSet(flows)


def lambda_ablation(
    skews: Sequence[float] = (0.0, 1.0, 2.0, 4.0),
    num_flows: int = 50,
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
) -> Table:
    """Does a larger lambda (Theorem 6 factor) hurt RS in practice?"""
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-LAMBDA: interval skew vs RS quality",
        columns=("skew", "mean lambda", "RS mean", "SP+MCF mean"),
    )

    def one(skew: float, run: int) -> tuple[float, float, float]:
        seed = base_seed + 1000 * run
        flows = _skewed_workload(topology, num_flows, skew, seed)
        lam = TimeGrid(flows).lam
        rs = solve_dcfsr(flows, topology, power, seed=seed)
        sp = sp_mcf(flows, topology, power)
        return (
            lam,
            rs.energy.total / rs.lower_bound,
            sp.energy.total / rs.lower_bound,
        )

    for skew, chunk in zip(skews, grouped_map(one, skews, runs, jobs)):
        table.add_row(
            skew,
            mean(r[0] for r in chunk),
            mean(r[1] for r in chunk),
            mean(r[2] for r in chunk),
        )
    return table


def rounding_ablation(
    num_flows: int = 60,
    fat_tree_k: int = 4,
    draws: int = 30,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """Variance of Random-Schedule's energy across rounding draws.

    Solves the relaxation once, then redraws the rounding ``draws`` times.
    The spread quantifies how much the "repeat until feasible/lucky" loop
    can buy.

    ``jobs`` is accepted for harness uniformity but unused: the draws
    deliberately consume one sequential RNG stream, so distributing them
    would change the sampled sequence.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    flows = paper_workload(topology, num_flows, seed=seed)
    grid = TimeGrid(flows)
    solver = FrankWolfeSolver(topology, default_cost(power))
    relaxation = solve_relaxation(flows, solver, grid)
    lb = relaxation.lower_bound
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(draws):
        schedule, _w = round_schedule(flows, relaxation, rng)
        ratios.append(schedule.energy(power, horizon=grid.horizon).total / lb)
    table = Table(
        title=f"ABL-ROUND: {draws} rounding draws from one relaxation (LB = 1)",
        columns=("draws", "min", "mean", "max", "std"),
    )
    table.add_row(draws, min(ratios), mean(ratios), max(ratios), stdev(ratios))
    return table


def online_ablation(
    flow_counts: Sequence[int] = (20, 40, 60, 80),
    fat_tree_k: int = 4,
    runs: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
) -> Table:
    """The price of being online: Online+Density vs RS vs SP+MCF.

    The online scheduler sees flows only at release time and commits
    irrevocably; offline Random-Schedule sees everything.  The gap between
    the two columns is the empirical cost of no clairvoyance.
    """
    from repro.core.online import solve_online_density

    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-ONLINE: normalized energy, online vs offline (LB = 1)",
        columns=("flows", "Online+Density", "RS (offline)", "SP+MCF"),
    )
    algorithms = {
        "Online": lambda f, t, p: solve_online_density(f, t, p).energy.total
    }

    def one(n: int, run: int) -> dict[str, float]:
        return single_run(
            topology,
            power,
            workload_factory=lambda seed: paper_workload(topology, n, seed=seed),
            seed=base_seed + 1000 * run,
            algorithms=algorithms,
        )

    for n, chunk in zip(flow_counts, grouped_map(one, flow_counts, runs, jobs)):
        table.add_row(
            n,
            mean(r["Online"] for r in chunk),
            mean(r["RS"] for r in chunk),
            mean(r["SP+MCF"] for r in chunk),
        )
    return table


def trace_ablation(
    rate: float = 4.0,
    duration: float = 40.0,
    window: float = 8.0,
    fat_tree_k: int = 4,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """ABL-TRACE: one Poisson trace replayed under five serving policies.

    Unlike the offline ablations (which normalize by the fractional lower
    bound of each drawn instance), this is a *streaming* comparison: every
    policy sees the identical arrival trace through the sliding-horizon
    engine and the table reports what the replay actually measured —
    deadline-miss rate, total energy, and the peak stacked link rate.
    The grid includes the two O(1) switch-lineage baselines
    (power-of-two-choices and least-loaded over k shortest candidates) so
    the marginal-cost and clairvoyant policies are judged against what a
    load-balancing fabric would do with no energy model at all.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    spec = TraceSpec(
        arrivals=PoissonProcess(rate),
        duration=duration,
        size_sampler=lognormal_sizes(1.0, 0.6),
        slack_model=proportional_slack(3.0, 1.0),
        seed=seed,
    )
    table = Table(
        title="ABL-TRACE: sliding-horizon replay of one Poisson trace",
        columns=(
            "policy", "flows", "windows", "miss rate", "energy", "peak rate",
        ),
    )
    policies = (
        OnlineDensityPolicy(),
        EpochDcfsPolicy(),
        GreedyDensityPolicy(),
        PowerOfTwoPolicy(seed=seed),
        LeastLoadedPolicy(),
    )

    def one(index: int):
        policy = policies[index]
        report = ReplayEngine(topology, power, policy, window=window).run(
            generate_trace(topology, spec)
        )
        return (
            policy.name,
            report.flows_seen,
            report.windows,
            report.miss_rate,
            report.total_energy,
            report.peak_link_rate,
        )

    for row in parallel_map(one, range(len(policies)), jobs=jobs):
        table.add_row(*row)
    return table


def relax_replay_ablation(
    rate: float = 3.0,
    duration: float = 30.0,
    window: float = 6.0,
    fat_tree_k: int = 4,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """ABL-RELAX-REPLAY: Algorithm 2 as a streaming policy.

    Replays one Poisson trace under the relaxation+rounding policy (the
    paper's strongest algorithm run window by window against the
    committed background, warm-started through one persistent F-MCF
    session) next to the marginal-cost and oblivious heuristics.  Same
    streaming semantics as ABL-TRACE: every policy sees the identical
    arrivals, and the table reports measured miss rate, energy, and peak
    stacked link rate.
    """
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    spec = TraceSpec(
        arrivals=PoissonProcess(rate),
        duration=duration,
        size_sampler=lognormal_sizes(1.0, 0.6),
        slack_model=proportional_slack(3.0, 1.0),
        seed=seed,
    )
    table = Table(
        title="ABL-RELAX-REPLAY: relaxation+rounding vs heuristics, streaming",
        columns=(
            "policy", "flows", "windows", "miss rate", "energy", "peak rate",
        ),
    )
    policies = (
        RelaxationRoundingPolicy(seed=seed),
        OnlineDensityPolicy(),
        GreedyDensityPolicy(),
    )

    def one(index: int):
        policy = policies[index]
        report = ReplayEngine(topology, power, policy, window=window).run(
            generate_trace(topology, spec)
        )
        return (
            policy.name,
            report.flows_seen,
            report.windows,
            report.miss_rate,
            report.total_energy,
            report.peak_link_rate,
        )

    for row in parallel_map(one, range(len(policies)), jobs=jobs):
        table.add_row(*row)
    return table


def rounding_mode_ablation(
    num_flows: int = 60,
    fat_tree_k: int = 4,
    runs: int = 5,
    base_seed: int = 0,
    jobs: int = 1,
) -> Table:
    """Random rounding (Algorithm 2) vs argmax-``w_bar`` derandomization.

    Both modes share the same relaxation per run; the table reports the
    normalized energies side by side.
    """
    if runs < 1:
        raise ValidationError(f"runs must be >= 1, got {runs}")
    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-ROUND-MODE: random vs deterministic rounding (LB = 1)",
        columns=("run", "random", "deterministic"),
    )

    def one(run: int) -> tuple[float, float]:
        seed = base_seed + 1000 * run
        flows = paper_workload(topology, num_flows, seed=seed)
        random_result = solve_dcfsr(flows, topology, power, seed=seed)
        det_result = solve_dcfsr(
            flows, topology, power, seed=seed, rounding="deterministic"
        )
        lb = random_result.lower_bound
        return random_result.energy.total / lb, det_result.energy.total / lb

    for run, (rnd, det) in enumerate(parallel_map(one, range(runs), jobs=jobs)):
        table.add_row(run, rnd, det)
    return table


def failure_ablation(
    failure_counts: Sequence[int] = (0, 2, 4, 8),
    num_flows: int = 50,
    fat_tree_k: int = 4,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """Normalized energy on progressively degraded fabrics.

    Fails switch-to-switch links (hosts stay connected), re-solves both
    algorithms on the survivor topology with the *same* workload, and
    normalizes by the degraded fabric's own lower bound.  Shows whether
    the RS advantage survives the loss of path diversity.
    """
    from repro.sim.failures import fail_links

    base = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    flows = paper_workload(base, num_flows, seed=seed)
    table = Table(
        title="ABL-FAIL: link failures vs normalized energy (per-fabric LB = 1)",
        columns=("failed links", "surviving links", "RS", "SP+MCF"),
    )
    def one(count: int) -> tuple[int, int, float, float]:
        topology, _failed = fail_links(base, count, seed=seed + count)
        rs = solve_dcfsr(flows, topology, power, seed=seed)
        sp = sp_mcf(flows, topology, power)
        lb = rs.lower_bound
        return (
            count,
            topology.num_edges,
            rs.energy.total / lb,
            sp.energy.total / lb,
        )

    for row in parallel_map(one, failure_counts, jobs=jobs):
        table.add_row(*row)
    return table


def topology_ablation(
    num_flows: int = 50,
    runs: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
) -> Table:
    """RS vs SP+MCF vs Greedy+MCF across DCN fabrics of comparable size."""
    fabrics: list[Topology] = [
        fat_tree(4),
        bcube(4, 1),
        vl2(4, 4, hosts_per_tor=4),
        leaf_spine(4, 4, hosts_per_leaf=4),
        jellyfish(8, 3, hosts_per_switch=2, seed=1),
    ]
    power = PowerModel.quadratic()
    table = Table(
        title="ABL-TOPO: normalized energy by fabric (LB = 1)",
        columns=("fabric", "hosts", "links", "RS", "SP+MCF", "Greedy+MCF"),
    )
    algorithms = {
        "Greedy+MCF": lambda f, t, p: greedy_marginal_routing(f, t, p).energy.total
    }

    def one(index: int, run: int) -> dict[str, float]:
        topology = fabrics[index]
        return single_run(
            topology,
            power,
            workload_factory=lambda seed: paper_workload(
                topology, num_flows, seed=seed
            ),
            seed=base_seed + 1000 * run,
            algorithms=algorithms,
        )

    chunks = grouped_map(one, range(len(fabrics)), runs, jobs)
    for topology, chunk in zip(fabrics, chunks):
        table.add_row(
            topology.name,
            len(topology.hosts),
            topology.num_edges,
            mean(r["RS"] for r in chunk),
            mean(r["SP+MCF"] for r in chunk),
            mean(r["Greedy+MCF"] for r in chunk),
        )
    return table


def _lookahead_trace(
    topology: Topology,
    process,
    duration: float,
    seed: int,
    hot_frac: float = 0.7,
) -> list[Flow]:
    """The ABL-LOOKAHEAD two-class workload on a :func:`pod_mesh` fabric.

    A fixed hotspot pair set (pod 2 -> pod 1, the learnable spatial
    signal) receives ``hot_frac`` of arrivals as tight-slack mice whose
    aggregate density spikes with the arrival process; the rest are
    uniform-pair elephants with ~1.5-window spans and unit-scale density
    — the cross-boundary population whose routing the lookahead hedge
    can actually steer.  Mice at slack factor 0.5 stack high densities
    on the hotspot routes, so a window that leaves elephants parked
    there pays the quadratic cross term when the next burst lands.
    """
    rng = np.random.default_rng(seed)
    hot_pairs = (("p2h0", "p1h0"), ("p2h1", "p1h1"), ("p2h0", "p1h1"))
    hosts = list(topology.hosts)
    flows: list[Flow] = []
    for i, t in enumerate(process.times(rng, duration)):
        if rng.random() < hot_frac:
            src, dst = hot_pairs[int(rng.integers(len(hot_pairs)))]
            size = float(rng.lognormal(np.log(1.2), 0.4))
            slack = 0.5 * size
        else:
            a, b = rng.choice(len(hosts), size=2, replace=False)
            src, dst = hosts[int(a)], hosts[int(b)]
            size = float(rng.lognormal(np.log(6.0), 0.4))
            slack = 1.1 * size
        flows.append(
            Flow(
                id=i, src=src, dst=dst, size=size, release=t,
                deadline=t + slack,
            )
        )
    return flows


def lookahead_ablation(
    duration: float = 48.0,
    window: float = 4.0,
    num_pods: int = 4,
    rounding_seeds: int = 4,
    trace_seed: int = 1,
    jobs: int = 1,
) -> Table:
    """ABL-LOOKAHEAD: model-predictive replay vs reactive vs oracle.

    One diurnal and one MMPP two-class trace (hotspot mice + long-span
    elephants, :func:`_lookahead_trace`) on a :func:`pod_mesh` fabric,
    replayed under the reactive relaxation+rounding policy and
    :class:`~repro.traces.forecast.LookaheadRelaxationPolicy` at three
    forecast-error levels: *oracle-rate* (the generating process's
    closed-form ``forecast``, the low-error end), *estimated* (the online
    EW estimator, realistic error), and *bias 4x* (the estimator's volume
    forecast quadrupled, the high-error end — the graceful-degradation
    probe).  The *offline* row solves the whole trace as one window —
    DCFS-R run clairvoyantly, the energy floor the lookahead hedge chases.
    Energies are means over ``rounding_seeds`` independent rounding draws;
    ``delta`` is each row's energy relative to its lane's reactive row.

    The mechanism being measured: phantoms only share elementary
    intervals with flows whose spans cross the window boundary, so the
    hedge sharpens exactly those flows' rounding distributions away from
    the routes the next burst will stack — symmetric Clos fabrics
    self-balance and show ~0 here, which is why the testbed is the
    asymmetric-overlap pod mesh (see :func:`pod_mesh`).
    """
    topology = pod_mesh(num_pods, 2)
    power = PowerModel.quadratic()
    lanes = (
        ("diurnal", DiurnalProcess(0.4, 9.0, 16.0)),
        ("mmpp", MarkovModulatedProcess((0.3, 12.0), (9.0, 2.5))),
    )

    def policy_for(kind: str, process, seed: int):
        if kind == "reactive" or kind == "offline":
            return RelaxationRoundingPolicy(seed=seed)
        if kind == "look-oracle":
            forecaster = TrafficForecaster(process=process)
        elif kind == "look-est":
            forecaster = TrafficForecaster()
        elif kind == "look-bias4":
            forecaster = TrafficForecaster(bias=4.0)
        else:  # pragma: no cover - registry and kinds list stay in sync
            raise ValidationError(f"unknown policy kind {kind!r}")
        return LookaheadRelaxationPolicy(seed=seed, forecaster=forecaster)

    kinds = ("reactive", "look-oracle", "look-est", "look-bias4", "offline")
    tasks = [
        (lane_index, kind, seed)
        for lane_index in range(len(lanes))
        for kind in kinds
        for seed in range(rounding_seeds)
    ]

    def one(index: int):
        lane_index, kind, seed = tasks[index]
        name, process = lanes[lane_index]
        flows = _lookahead_trace(
            topology, process, duration, trace_seed + lane_index
        )
        horizon = duration if kind == "offline" else window
        report = ReplayEngine(
            topology, power, policy_for(kind, process, seed), window=horizon
        ).run(iter(flows))
        return report.flows_seen, report.miss_rate, report.total_energy

    results = parallel_map(one, range(len(tasks)), jobs=jobs)
    table = Table(
        title="ABL-LOOKAHEAD: predictive lookahead replay on pod_mesh",
        columns=(
            "trace", "policy", "flows", "miss rate", "energy", "delta",
        ),
    )
    cursor = 0
    for name, _process in lanes:
        lane_energy: dict[str, float] = {}
        lane_rows = []
        for kind in kinds:
            chunk = results[cursor : cursor + rounding_seeds]
            cursor += rounding_seeds
            flows_seen = chunk[0][0]
            miss = mean(r[1] for r in chunk)
            energy = mean(r[2] for r in chunk)
            lane_energy[kind] = energy
            lane_rows.append((kind, flows_seen, miss, energy))
        reactive = lane_energy["reactive"]
        for kind, flows_seen, miss, energy in lane_rows:
            table.add_row(
                name,
                kind,
                flows_seen,
                miss,
                energy,
                (energy - reactive) / reactive,
            )
    return table


def churn_ablation(
    failure_rates: Sequence[float] = (0.0, 0.1, 0.3),
    rate: float = 3.0,
    duration: float = 30.0,
    window: float = 4.0,
    fat_tree_k: int = 4,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """ABL-CHURN: mid-replay link churn under self-healing policies.

    One Poisson trace is replayed against a seeded connectivity-safe
    link-churn process (failure attempts Poisson at ``failure_rate`` per
    unit time, Exp repair delays) for each policy x failure-rate grid
    point.  Unlike ABL-FAIL — which re-solves on a statically degraded
    fabric — failures here land *mid-replay*: committed flows crossing a
    dead link are truncated at the window boundary, classified, and
    repaired, and the table reports the honest disruption accounting
    (flows rerouted, misses attributed to failures, time-to-recover,
    repair energy delta) next to the energy actually spent.  The
    ``failure_rate = 0`` column doubles as the no-churn regression
    anchor: it must match the fault-free replay of the same trace.
    """
    from repro.sim.churn import FaultSchedule

    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    spec = TraceSpec(
        arrivals=PoissonProcess(rate),
        duration=duration,
        size_sampler=lognormal_sizes(1.0, 0.6),
        slack_model=proportional_slack(3.0, 1.0),
        seed=seed,
    )
    table = Table(
        title="ABL-CHURN: mid-replay link churn and self-healing repair",
        columns=(
            "policy",
            "fail rate",
            "failures",
            "rerouted",
            "fail misses",
            "other misses",
            "recover t",
            "repair dE",
            "energy",
        ),
    )
    policies = (
        GreedyDensityPolicy,
        OnlineDensityPolicy,
        lambda: RelaxationRoundingPolicy(seed=seed),
    )

    def one(point: tuple[int, float]):
        index, fail_rate = point
        faults = None
        if fail_rate > 0:
            faults = FaultSchedule.generate(
                topology,
                rate=fail_rate,
                duration=duration,
                seed=seed + 7919 * int(round(1000 * fail_rate)),
            )
        policy = policies[index]()
        report = ReplayEngine(
            topology, power, policy, window=window, faults=faults
        ).run(generate_trace(topology, spec))
        return (
            policy.name,
            fail_rate,
            report.link_failures,
            report.flows_rerouted,
            report.misses_attributed_to_failure,
            report.deadline_misses - report.misses_attributed_to_failure,
            report.time_to_recover,
            report.repair_energy_delta,
            report.total_energy,
        )

    grid = [
        (index, fail_rate)
        for index in range(len(policies))
        for fail_rate in failure_rates
    ]
    for row in parallel_map(one, grid, jobs=jobs):
        table.add_row(*row)
    return table


def uplink_conduits(topology: Topology) -> tuple:
    """Agg/core-side bundles of the core uplinks as conduit SRLGs.

    Every aggregation switch's core-facing links run in one physical
    bundle, and every core switch's links share one linecard — two
    overlapping families of shared-risk groups (``conduit:<switch>``)
    over the same uplink edges, so each uplink shares risk with exactly
    the links it touches at either endpoint.  The group is the *risk*
    unit; the failure unit stays a single link.  Built from the fabric's
    node-naming convention (``sw_a_*`` aggregation, ``sw_c_*`` core —
    fat-tree and VL2 alike); fabrics without that structure yield no
    conduits.
    """
    from repro.sim.churn import FailureDomain
    from repro.topology.base import canonical_edge

    conduits = []
    for node in topology.graph.nodes:
        name = str(node)
        if name.startswith("sw_a_"):
            other = "sw_c_"
        elif name.startswith("sw_c_"):
            other = "sw_a_"
        else:
            continue
        uplinks = [
            canonical_edge(name, str(nbr))
            for nbr in topology.graph.neighbors(node)
            if str(nbr).startswith(other)
        ]
        if len(uplinks) >= 2:
            conduits.append(
                FailureDomain.srlg(f"conduit:{name}", uplinks)
            )
    return tuple(sorted(conduits, key=lambda d: d.name))


def churn_correlated_ablation(
    rate: float = 3.0,
    duration: float = 30.0,
    window: float = 4.0,
    fail_rate: float = 0.4,
    mttr: float = 6.0,
    cascade: float = 0.8,
    runs: int = 5,
    fat_tree_k: int = 4,
    seed: int = 0,
    jobs: int = 1,
) -> Table:
    """ABL-CHURN-CORR: correlated vs independent churn at matched downtime.

    Three arms replay Poisson traces under GreedyDensity, averaged over
    ``runs`` seeded (trace, fault-schedule) draws:

    * ``independent`` — PR-8-style connectivity-safe single-link churn
      (:meth:`FaultSchedule.generate`), the baseline profile.
    * ``correlated/blind`` — conduit-SRLG churn: primary single-link
      failures drawn over the uplink-conduit members
      (:func:`uplink_conduits`), each cascading to physically adjacent
      links with probability ``cascade`` — but with the SRLG-diversity
      penalty disabled, so repairs are free to land on the failed link's
      conduit sibling, the single most hazardous edge in the fabric.
    * ``correlated/diverse`` — the same fault schedules with SRLG-diverse
      repair: survivor paths sharing a risk group with a down domain are
      penalized, so rerouted flows dodge edges likely to fail next and
      avoid being re-disrupted by the cascade's follow-on failures.

    Each run's independent rate is calibrated by fixed point so its
    total link-seconds of outage (:meth:`FaultSchedule.link_downtime`,
    counted as a per-link union) matches that run's correlated
    schedule — the comparison is at equal downtime fraction, not equal
    event count.  The two correlated arms share schedules, so the
    diverse-vs-blind delta in time-to-recover, reroutes and energy is
    pure repair policy.
    """
    from repro.sim.churn import FailureDomain, FaultSchedule

    topology = fat_tree(fat_tree_k)
    power = PowerModel.quadratic()
    conduits = uplink_conduits(topology)
    if not conduits:
        raise ValidationError(
            f"{topology.name!r} has no aggregation uplink conduits"
        )
    # The generator's unit of failure: one conduit member link at a time
    # (the conduits are the *risk* groups, registered with the engine
    # below, not the failure unit).  Each uplink sits in two conduits —
    # agg-side and core-side — so dedupe into one singleton per link.
    members = sorted({e for conduit in conduits for e in conduit.edges})
    pool = tuple(
        FailureDomain.srlg(f"link:{u}--{v}", [(u, v)]) for u, v in members
    )
    horizon = duration + 10.0 * mttr

    def schedules(run: int) -> tuple:
        correlated = FaultSchedule.generate_correlated(
            topology,
            rate=fail_rate,
            duration=duration,
            mttr=mttr,
            seed=seed + 211 + run,
            domains=pool,
            cascade=cascade,
        )
        target = correlated.link_downtime(topology, horizon)

        def independent_at(link_rate: float) -> FaultSchedule:
            return FaultSchedule.generate(
                topology,
                rate=link_rate,
                duration=duration,
                mttr=mttr,
                seed=seed + 101 + run,
            )

        # Fixed-point calibration: single-link events contribute ~mttr
        # link-seconds each, so downtime scales ~linearly in the rate; a
        # few iterations absorb the connectivity-safe rejections and
        # draw noise, and the best-matching draw wins (short horizons
        # make downtime jumpy in the rate, so the iteration can ring).
        link_rate = fail_rate
        independent = best = independent_at(link_rate)
        best_err = np.inf
        for _ in range(6):
            got = independent.link_downtime(topology, horizon)
            if target <= 0:
                break
            if abs(got - target) < best_err:
                best, best_err = independent, abs(got - target)
            if got <= 0 or best_err <= 0.05 * target:
                break
            link_rate *= target / got
            independent = independent_at(link_rate)
        return best, correlated

    arms = ("independent", "correlated/blind", "correlated/diverse")

    def one(task: tuple[int, int]):
        index, run = task
        independent, correlated = schedules(run)
        faults = independent if index == 0 else correlated
        spec = TraceSpec(
            arrivals=PoissonProcess(rate),
            duration=duration,
            size_sampler=lognormal_sizes(1.0, 0.6),
            slack_model=proportional_slack(3.0, 1.0),
            seed=seed + run,
        )
        report = ReplayEngine(
            topology,
            power,
            GreedyDensityPolicy(),
            window=window,
            faults=faults,
            failure_domains=conduits,
            srlg_diverse=index != 1,
        ).run(generate_trace(topology, spec))
        downtime = faults.link_downtime(topology, horizon)
        denom = horizon * topology.num_edges
        return (
            downtime / denom,
            report.link_failures,
            report.domain_failures,
            report.flows_rerouted,
            report.misses_attributed_to_failure,
            report.total_recovery_time,
            report.total_energy,
        )

    grid = [
        (index, run) for index in range(len(arms)) for run in range(runs)
    ]
    results = parallel_map(one, grid, jobs=jobs)
    table = Table(
        title=(
            "ABL-CHURN-CORR: correlated failure domains at matched downtime"
        ),
        columns=(
            "profile",
            "downtime",
            "failures",
            "domains",
            "rerouted",
            "fail misses",
            "recover t",
            "energy",
        ),
    )
    for index, profile in enumerate(arms):
        chunk = results[index * runs : (index + 1) * runs]
        table.add_row(
            profile, *(mean(r[col] for r in chunk) for col in range(7))
        )
    return table
