"""Schedule analysis metrics beyond raw energy.

These feed the example applications and the ablation benchmarks: energy
decomposition, deadline slack statistics, link utilization distribution,
and Jain's fairness index over flow rates.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.scheduling.schedule import Schedule

__all__ = ["ScheduleMetrics", "compute_metrics", "jain_index"]


def jain_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in (0, 1]."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValidationError("jain_index requires at least one value")
    if np.any(arr < 0):
        raise ValidationError("jain_index requires nonnegative values")
    denom = arr.size * float(np.sum(arr**2))
    if denom == 0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


@dataclass(frozen=True)
class ScheduleMetrics:
    """Aggregate quality metrics of a schedule."""

    total_energy: float
    idle_energy: float
    dynamic_energy: float
    active_links: int
    mean_link_utilization: float
    peak_link_rate: float
    mean_deadline_slack: float
    min_deadline_slack: float
    rate_fairness: float
    mean_path_length: float

    def as_dict(self) -> dict[str, float]:
        return {
            "total_energy": self.total_energy,
            "idle_energy": self.idle_energy,
            "dynamic_energy": self.dynamic_energy,
            "active_links": float(self.active_links),
            "mean_link_utilization": self.mean_link_utilization,
            "peak_link_rate": self.peak_link_rate,
            "mean_deadline_slack": self.mean_deadline_slack,
            "min_deadline_slack": self.min_deadline_slack,
            "rate_fairness": self.rate_fairness,
            "mean_path_length": self.mean_path_length,
        }


def compute_metrics(
    schedule: Schedule,
    flows: FlowSet,
    power: PowerModel,
    horizon: tuple[float, float] | None = None,
) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a schedule."""
    if horizon is None:
        horizon = flows.horizon
    t0, t1 = horizon
    breakdown = schedule.energy(power, horizon=horizon)
    link_rates = schedule.link_rates()
    utilizations = [
        profile.support_length() / (t1 - t0) for profile in link_rates.values()
    ]
    peak = max((p.maximum() for p in link_rates.values()), default=0.0)

    slacks = []
    mean_rates = []
    path_lengths = []
    for fs in schedule:
        slacks.append(fs.flow.deadline - fs.completion_time())
        duration = sum(s.duration for s in fs.segments)
        mean_rates.append(fs.transmitted / duration)
        path_lengths.append(fs.num_links)

    return ScheduleMetrics(
        total_energy=breakdown.total,
        idle_energy=breakdown.idle,
        dynamic_energy=breakdown.dynamic,
        active_links=breakdown.active_links,
        mean_link_utilization=float(np.mean(utilizations)) if utilizations else 0.0,
        peak_link_rate=peak,
        mean_deadline_slack=float(np.mean(slacks)),
        min_deadline_slack=float(np.min(slacks)),
        rate_fairness=jain_index(mean_rates),
        mean_path_length=float(np.mean(path_lengths)),
    )
