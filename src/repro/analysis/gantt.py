"""ASCII schedule visualization: per-flow Gantt chart and link sparklines.

No plotting stack exists offline, so the examples render schedules as
text.  Each flow row shows its span (``.``), its active transmission
segments (``#``), release (``[``) and deadline (``]``).  Link sparklines
quantize the piecewise-constant rate profile into height glyphs, giving a
quick visual of load balance across links.
"""

from __future__ import annotations

import io

from repro.errors import ValidationError
from repro.scheduling.schedule import Schedule
from repro.topology.base import Edge

__all__ = ["render_gantt", "render_link_sparklines"]

_SPARK_GLYPHS = " .:-=+*#%@"


def _column(t: float, t0: float, t1: float, width: int) -> int:
    """Map time ``t`` to a character column in ``[0, width - 1]``."""
    frac = (t - t0) / (t1 - t0)
    return max(0, min(width - 1, int(frac * width)))


def render_gantt(
    schedule: Schedule,
    horizon: tuple[float, float] | None = None,
    width: int = 72,
) -> str:
    """Render the per-flow transmission timeline as text.

    Rows are sorted by release time; the header carries the time axis.
    """
    if width < 16:
        raise ValidationError(f"width must be >= 16, got {width}")
    if horizon is None:
        starts = [fs.flow.release for fs in schedule]
        ends = [fs.flow.deadline for fs in schedule]
        horizon = (min(starts), max(ends))
    t0, t1 = horizon
    if not t1 > t0:
        raise ValidationError(f"bad horizon {horizon!r}")

    label_width = max(len(str(fs.flow.id)) for fs in schedule) + 2
    out = io.StringIO()
    axis = f"{'':{label_width}}t = {t0:g}{' ' * (width - 12)}t = {t1:g}"
    out.write(axis.rstrip() + "\n")

    for fs in sorted(schedule, key=lambda f: (f.flow.release, str(f.flow.id))):
        row = [" "] * width
        a = _column(fs.flow.release, t0, t1, width)
        b = _column(fs.flow.deadline, t0, t1, width)
        for i in range(a, b + 1):
            row[i] = "."
        for seg in fs.segments:
            lo = _column(seg.start, t0, t1, width)
            hi = _column(seg.end, t0, t1, width)
            for i in range(lo, max(hi, lo + 1)):
                row[i] = "#"
        row[a] = "["
        row[b] = "]"
        out.write(f"{str(fs.flow.id):>{label_width - 1}} " + "".join(row) + "\n")
    return out.getvalue()


def render_link_sparklines(
    schedule: Schedule,
    horizon: tuple[float, float] | None = None,
    width: int = 72,
    top: int | None = None,
) -> str:
    """Render each active link's rate profile as a one-line sparkline.

    Links are sorted by peak rate (descending); ``top`` limits the output
    to the busiest links.  All sparklines share one rate scale so heights
    are comparable across links.
    """
    if width < 16:
        raise ValidationError(f"width must be >= 16, got {width}")
    rates = schedule.link_rates()
    if horizon is None:
        points = [
            p
            for profile in rates.values()
            for p in profile.breakpoints
        ]
        horizon = (min(points), max(points))
    t0, t1 = horizon
    if not t1 > t0:
        raise ValidationError(f"bad horizon {horizon!r}")

    global_peak = max(profile.maximum() for profile in rates.values())
    if global_peak <= 0:
        raise ValidationError("schedule carries no traffic")

    ordered: list[tuple[Edge, float]] = sorted(
        ((edge, profile.maximum()) for edge, profile in rates.items()),
        key=lambda item: (-item[1], item[0]),
    )
    if top is not None:
        ordered = ordered[:top]

    label_width = max(len(f"{u}-{v}") for (u, v), _ in ordered) + 2
    out = io.StringIO()
    for (u, v), peak in ordered:
        profile = rates[(u, v)]
        cells = []
        for i in range(width):
            t = t0 + (i + 0.5) * (t1 - t0) / width
            level = profile(t) / global_peak
            glyph = _SPARK_GLYPHS[
                min(len(_SPARK_GLYPHS) - 1, int(level * (len(_SPARK_GLYPHS) - 1) + 0.5))
            ]
            cells.append(glyph)
        out.write(
            f"{u}-{v}".ljust(label_width)
            + "".join(cells)
            + f"  peak={peak:.3g}\n"
        )
    return out.getvalue()
