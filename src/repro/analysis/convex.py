"""Reference convex solvers used to certify the combinatorial algorithms.

The paper appeals to generic convex programming twice:

* program **(P1)** — the DCFS rate-assignment program (Section III-B),
  solvable in polynomial time by the Ellipsoid method; and
* the per-interval **F-MCF** relaxation inside Random-Schedule
  (Definition 4), "optimally solved by convex programming".

Neither an LP library nor a disciplined-convex framework is available
offline, so this module provides small, dependable scipy-based reference
solvers.  They are *test oracles*: quality over speed, intended for
instances with a handful of flows/links, used to certify

* that Most-Critical-First attains (P1)'s optimum, and
* that the Frank–Wolfe solver attains the F-MCF optimum.

(P1) is solved after the substitution ``u_i = 1/s_i`` which makes both the
objective ``sum_i |P_i| w_i mu u_i^(1-alpha)`` and the interval constraints
``sum w_i u_i <= length`` convex/linear; the exponential family of subset
constraints collapses to the O(n^2) interval constraints (only subsets
spanning a full ``[release, deadline]`` window can be binding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import optimize

from repro.errors import SolverError, ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.topology.base import Edge, Topology, path_edges

__all__ = ["P1Solution", "solve_p1_reference", "FmcfReference", "solve_fmcf_reference"]


@dataclass(frozen=True)
class P1Solution:
    """Optimal rates and objective of program (P1)."""

    rates: Mapping[int | str, float]
    objective: float


def _interval_constraints(
    flows: FlowSet, link_members: Mapping[Edge, list[int | str]]
) -> list[tuple[list[int | str], float]]:
    """All potentially binding (P1) constraints.

    For each link and each pair ``(a, b)`` of a release and a later
    deadline among the link's flows, the flows with span inside ``[a, b]``
    must fit: ``sum w_i / s_i <= b - a``.
    """
    constraints: list[tuple[list[int | str], float]] = []
    for edge in sorted(link_members):
        members = link_members[edge]
        releases = sorted({flows[i].release for i in members})
        deadlines = sorted({flows[i].deadline for i in members})
        for a in releases:
            for b in deadlines:
                if b <= a:
                    continue
                inside = [
                    i
                    for i in members
                    if flows[i].release >= a and flows[i].deadline <= b
                ]
                if inside:
                    constraints.append((inside, b - a))
    return constraints


def solve_p1_reference(
    flows: FlowSet,
    topology: Topology,
    paths: Mapping[int | str, Sequence[str]],
    power: PowerModel,
    tol: float = 1e-10,
) -> P1Solution:
    """Solve (P1) to high accuracy with SLSQP on the ``u = 1/s`` program.

    Returns the optimal single rates per flow and the objective
    ``sum_i |P_i| w_i mu s_i^(alpha-1)``.
    """
    ids = list(flows.ids)
    index = {fid: k for k, fid in enumerate(ids)}
    hops = {}
    link_members: dict[Edge, list[int | str]] = {}
    for flow in flows:
        edges = path_edges(tuple(paths[flow.id]))
        hops[flow.id] = len(edges)
        for edge in edges:
            link_members.setdefault(edge, []).append(flow.id)

    weights = np.array([flows[i].size for i in ids])
    coeff = np.array(
        [hops[i] * flows[i].size * power.mu for i in ids]
    )
    exponent = 1.0 - power.alpha  # objective term u^(1-alpha), convex for u>0

    def objective(u: np.ndarray) -> float:
        return float(np.sum(coeff * u**exponent))

    def gradient(u: np.ndarray) -> np.ndarray:
        return coeff * exponent * u ** (exponent - 1.0)

    raw_constraints = _interval_constraints(flows, link_members)
    a_rows = []
    lengths = []
    for members, length in raw_constraints:
        row = np.zeros(len(ids))
        for fid in members:
            row[index[fid]] += weights[index[fid]]
        a_rows.append(row)
        lengths.append(length)
    a_mat = np.vstack(a_rows)
    b_vec = np.array(lengths)

    slsqp_constraints = [
        {
            "type": "ineq",
            "fun": (lambda u, row=row, length=length: length - row @ u),
            "jac": (lambda u, row=row: -row),
        }
        for row, length in zip(a_rows, lengths)
    ]

    # Start at the per-flow density rates (u = span / w); the solvers
    # restore feasibility if nested spans make this infeasible.
    u0 = np.array([flows[i].span_length / flows[i].size for i in ids])
    lower = 1e-9

    def feasible(u: np.ndarray, slack: float = 1e-6) -> bool:
        return bool(np.all(a_mat @ u <= b_vec * (1.0 + slack) + slack))

    best: tuple[float, np.ndarray] | None = None
    # SLSQP occasionally stalls with "positive directional derivative";
    # retry from perturbed starts, then fall back to trust-constr.
    for attempt, (start, ftol) in enumerate(
        [(u0, tol), (u0 * 0.5, 1e-8), (u0 * 0.25, 1e-7)]
    ):
        result = optimize.minimize(
            objective,
            start,
            jac=gradient,
            method="SLSQP",
            bounds=[(lower, None)] * len(ids),
            constraints=slsqp_constraints,
            options={"maxiter": 500, "ftol": ftol},
        )
        if feasible(result.x):
            value = objective(result.x)
            if best is None or value < best[0]:
                best = (value, result.x.copy())
            if result.success:
                break
    if best is None:
        result = optimize.minimize(
            objective,
            u0 * 0.5,
            jac=gradient,
            method="trust-constr",
            bounds=optimize.Bounds(lower, np.inf),
            constraints=[optimize.LinearConstraint(a_mat, -np.inf, b_vec)],
            options={"maxiter": 2000, "gtol": 1e-9},
        )
        if not feasible(result.x):
            raise SolverError(
                f"(P1) reference solve failed: {result.message}"
            )
        best = (objective(result.x), result.x.copy())

    value, u_best = best
    rates = {fid: float(1.0 / u_best[index[fid]]) for fid in ids}
    return P1Solution(rates=rates, objective=float(value))


@dataclass(frozen=True)
class FmcfReference:
    """Optimal value and per-link loads of the F-MCF reference solve."""

    objective: float
    link_loads: Mapping[Edge, float]


def solve_fmcf_reference(
    topology: Topology,
    demands: Sequence[tuple[str, str, float]],
    cost: Callable[[float], float],
    cost_derivative: Callable[[float], float],
    tol: float = 1e-9,
) -> FmcfReference:
    """Solve min ``sum_e cost(x_e)`` s.t. flow conservation, ``y >= 0``.

    Exact edge-flow formulation on the directed expansion of the topology;
    one variable per (commodity, arc).  Only suitable for small graphs —
    this is the oracle the Frank–Wolfe solver is tested against.

    ``cost`` must be convex and differentiable with ``cost(0) == 0`` after
    envelope treatment (see :meth:`repro.power.PowerModel.envelope`).
    """
    nodes = topology.nodes
    node_idx = {n: i for i, n in enumerate(nodes)}
    arcs: list[tuple[int, int, int]] = []  # (u, v, undirected edge id)
    for eid, (u, v) in enumerate(topology.edges):
        arcs.append((node_idx[u], node_idx[v], eid))
        arcs.append((node_idx[v], node_idx[u], eid))
    num_arcs = len(arcs)
    num_comm = len(demands)
    if num_comm == 0:
        raise ValidationError("solve_fmcf_reference requires >= 1 demand")
    n_var = num_comm * num_arcs

    arc_edge = np.array([eid for _, _, eid in arcs])
    num_edges = topology.num_edges

    def link_loads(y: np.ndarray) -> np.ndarray:
        loads = np.zeros(num_edges)
        flat = y.reshape(num_comm, num_arcs).sum(axis=0)
        np.add.at(loads, arc_edge, flat)
        return loads

    def objective(y: np.ndarray) -> float:
        return float(sum(cost(x) for x in link_loads(y)))

    def gradient(y: np.ndarray) -> np.ndarray:
        loads = link_loads(y)
        marginal = np.array([cost_derivative(x) for x in loads])
        per_arc = marginal[arc_edge]
        return np.tile(per_arc, num_comm)

    # Flow conservation: for each commodity k and node n,
    # outflow - inflow = +D (source), -D (sink), 0 otherwise.  The sink row
    # is the negated sum of all the others, so it is dropped to keep the
    # equality system full-rank (SLSQP's LSQ subproblem rejects redundant
    # constraints with "Singular matrix C").
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for k, (src, dst, demand) in enumerate(demands):
        if demand <= 0:
            raise ValidationError(f"demand {k} must be positive, got {demand}")
        for n, node in enumerate(nodes):
            if node == dst:
                continue
            row = np.zeros(n_var)
            for a, (u, v, _eid) in enumerate(arcs):
                if u == n:
                    row[k * num_arcs + a] += 1.0
                if v == n:
                    row[k * num_arcs + a] -= 1.0
            rows.append(row)
            rhs.append(demand if node == src else 0.0)
    a_eq = np.vstack(rows)
    b_eq = np.array(rhs)

    constraints = [
        {
            "type": "eq",
            "fun": lambda y: a_eq @ y - b_eq,
            "jac": lambda y: a_eq,
        }
    ]

    # Warm start: put each commodity on a shortest path.
    y0 = np.zeros(n_var)
    arc_lookup = {(u, v): a for a, (u, v, _eid) in enumerate(arcs)}
    for k, (src, dst, demand) in enumerate(demands):
        path = topology.shortest_path(src, dst)
        for u, v in zip(path, path[1:]):
            a = arc_lookup[(node_idx[u], node_idx[v])]
            y0[k * num_arcs + a] = demand

    result = optimize.minimize(
        objective,
        y0,
        jac=gradient,
        method="SLSQP",
        bounds=[(0.0, None)] * n_var,
        constraints=constraints,
        options={"maxiter": 800, "ftol": tol},
    )
    if not result.success:
        raise SolverError(f"F-MCF reference solve failed: {result.message}")
    loads = link_loads(result.x)
    return FmcfReference(
        objective=float(result.fun),
        link_loads={
            edge: float(loads[topology.edge_id(edge)]) for edge in topology.edges
        },
    )
