"""One-call result validation: structural checks + simulator cross-check.

``validate_result`` is the convenience every example and downstream user
wants after running an algorithm: does the schedule deliver every flow on
time over valid paths, does it respect capacity, and does the independent
fluid replay agree with the analytical energy?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.scheduling.schedule import FeasibilityReport, Schedule
from repro.sim.fluid import simulate_fluid
from repro.topology.base import Topology

__all__ = ["ValidationOutcome", "validate_result"]


@dataclass(frozen=True)
class ValidationOutcome:
    """Everything a schedule validation observed."""

    report: FeasibilityReport
    analytic_energy: float
    simulated_energy: float
    energy_agreement: float
    simulated_deadlines_met: bool

    @property
    def ok(self) -> bool:
        """Structurally feasible, deadlines replay clean, energies agree."""
        return (
            self.report.ok
            and self.simulated_deadlines_met
            and self.energy_agreement <= 1e-6
        )

    def summary(self) -> str:
        if self.ok:
            return (
                f"valid (energy {self.analytic_energy:.6g}, "
                f"simulator agrees to {self.energy_agreement:.2e})"
            )
        parts = []
        if not self.report.ok:
            parts.append(self.report.summary())
        if not self.simulated_deadlines_met:
            parts.append("simulator observed missed deadlines")
        if self.energy_agreement > 1e-6:
            parts.append(
                f"energy mismatch {self.energy_agreement:.3e} "
                f"(analytic {self.analytic_energy:.6g} vs "
                f"simulated {self.simulated_energy:.6g})"
            )
        return "; ".join(parts)


def validate_result(
    schedule: Schedule,
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    horizon: tuple[float, float] | None = None,
) -> ValidationOutcome:
    """Run the full validation stack against a schedule."""
    if horizon is None:
        horizon = flows.horizon
    t0, t1 = horizon
    if not t1 > t0:
        raise ValidationError(f"bad horizon {horizon!r}")
    report = schedule.verify(flows, topology, power)
    analytic = schedule.energy(power, horizon=horizon).total
    sim = simulate_fluid(schedule, flows, topology, power, horizon=horizon)
    agreement = abs(analytic - sim.total_energy) / max(abs(analytic), 1e-30)
    return ValidationOutcome(
        report=report,
        analytic_energy=analytic,
        simulated_energy=sim.total_energy,
        energy_agreement=agreement,
        simulated_deadlines_met=sim.all_deadlines_met,
    )
