"""ASCII table / CSV rendering for experiment results.

No plotting stack is available offline, so every experiment renders its
figure as (a) an aligned text table of the plotted series and (b) an
optional CSV for downstream plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError

__all__ = ["Table", "ascii_bar"]


@dataclass
class Table:
    """A simple column-aligned table with CSV export."""

    title: str
    columns: Sequence[str]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValidationError("table needs at least one column")
        self._rows: list[tuple[str, ...]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValidationError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self._rows.append(tuple(_fmt(c) for c in cells))

    @property
    def rows(self) -> list[tuple[str, ...]]:
        return list(self._rows)

    def render(self) -> str:
        """Aligned text rendering, suitable for terminals and logs."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n"
        )
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in self._rows:
            out.write(
                "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n"
            )
        return out.getvalue()

    def to_csv(self) -> str:
        lines = [",".join(str(c) for c in self.columns)]
        lines.extend(",".join(row) for row in self._rows)
        return "\n".join(lines) + "\n"

    def save_csv(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_bar(value: float, scale: float, width: int = 40) -> str:
    """A proportional bar, e.g. for quick visual series comparison."""
    if scale <= 0:
        raise ValidationError("scale must be positive")
    filled = max(0, min(width, round(width * value / scale)))
    return "#" * filled + "." * (width - filled)
