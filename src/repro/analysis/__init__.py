"""Analysis utilities: reference convex solvers, metrics, reporting."""

from repro.analysis.convex import (
    FmcfReference,
    P1Solution,
    solve_fmcf_reference,
    solve_p1_reference,
)
from repro.analysis.gantt import render_gantt, render_link_sparklines
from repro.analysis.metrics import ScheduleMetrics, compute_metrics, jain_index
from repro.analysis.reporting import Table, ascii_bar
from repro.analysis.validation import ValidationOutcome, validate_result

__all__ = [
    "render_gantt",
    "render_link_sparklines",
    "ValidationOutcome",
    "validate_result",
    "P1Solution",
    "solve_p1_reference",
    "FmcfReference",
    "solve_fmcf_reference",
    "ScheduleMetrics",
    "compute_metrics",
    "jain_index",
    "Table",
    "ascii_bar",
]
