"""Backend registry for the compiled kernel tier (DESIGN.md Section 15).

The hot loops of the reproduction — the Dijkstra batch inside
Frank-Wolfe, the EDF event sweep, the pairwise pricing move — have
their inner kernels written once, in the numba nopython subset, in
:mod:`repro.kernels._impl`.  This module decides *how* those kernel
bodies run:

``auto``
    (default) use numba-compiled kernels when numba imports cleanly,
    otherwise fall back to the pure-Python/numpy engines silently.
``compiled``
    require numba; if it is absent, emit one
    :class:`KernelFallbackWarning` and fall back to ``python``.
``python``
    never dispatch to kernels — the retained array/`*_reference`
    engines run exactly as before this tier existed.
``interpreted``
    dispatch to the kernel *bodies* executed as plain Python.  Slow,
    but it runs the exact code numba would compile, which is how the
    test suite pins compiled results bit-for-bit on machines without
    numba.

The backend is chosen via :func:`set_backend`, the ``REPRO_KERNELS``
environment variable, or the ``repro-experiments --kernels`` flag.
Resolution is lazy and cached: the first :func:`active` call imports
numba (if wanted), compiles, and runs :func:`warmup` so JIT cost is
paid once up front rather than inside the first timed solve.  Compiled
kernels use ``cache=True`` so later processes reuse the on-disk JIT
cache (honours ``NUMBA_CACHE_DIR``).
"""

from __future__ import annotations

import os
import warnings
from types import SimpleNamespace

import numpy as np

from repro.kernels import _impl

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "KernelFallbackWarning",
    "active",
    "active_backend",
    "interpreted",
    "kernel_info",
    "numba_version",
    "requested_backend",
    "reset_backend",
    "set_backend",
    "warmup",
]

BACKENDS = ("auto", "compiled", "python", "interpreted")
ENV_VAR = "REPRO_KERNELS"


class KernelFallbackWarning(RuntimeWarning):
    """Compiled kernels were requested but numba is not importable."""


_requested: str | None = None  # explicit set_backend() override
_resolved: tuple[str, SimpleNamespace | None] | None = None
_numba_version: str | None = None
_interpreted_ns: SimpleNamespace | None = None
# Compiled namespace + its warm-up are per-process one-offs: backend
# switches (tests) must not recompile or rewarm on every resolution.
_compiled_ns: SimpleNamespace | None = None
_warmed = False


def set_backend(name: str) -> None:
    """Select the kernel backend for this process (overrides the env var)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    global _requested, _resolved
    _requested = name
    _resolved = None


def reset_backend() -> None:
    """Drop any override and cached resolution (re-reads ``REPRO_KERNELS``)."""
    global _requested, _resolved
    _requested = None
    _resolved = None


def requested_backend() -> str:
    """The backend asked for — ``set_backend`` wins over ``REPRO_KERNELS``."""
    if _requested is not None:
        return _requested
    value = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if value not in BACKENDS:
        warnings.warn(
            f"ignoring unknown {ENV_VAR}={value!r}; using 'auto'",
            KernelFallbackWarning,
            stacklevel=2,
        )
        return "auto"
    return value


def interpreted() -> SimpleNamespace:
    """The kernel bodies as plain-Python callables (the pinning tier)."""
    global _interpreted_ns
    if _interpreted_ns is None:
        ns = SimpleNamespace()
        for name in _impl.KERNEL_NAMES:
            setattr(ns, name, getattr(_impl, name))
        _interpreted_ns = ns
    return _interpreted_ns


def _load_numba():
    try:
        import numba
    except Exception:  # pragma: no cover - exercised via sys.modules stub
        return None
    return numba


def _resolve() -> tuple[str, SimpleNamespace | None]:
    global _resolved, _numba_version
    if _resolved is not None:
        return _resolved
    _numba_version = None  # reflects the *current* resolution only
    request = requested_backend()
    if request == "python":
        _resolved = ("python", None)
    elif request == "interpreted":
        _resolved = ("interpreted", interpreted())
    else:  # auto / compiled
        numba = _load_numba()
        if numba is None:
            if request == "compiled":
                warnings.warn(
                    "kernel backend 'compiled' requested but numba is not"
                    " importable; falling back to the pure-Python tier"
                    " (pip install .[kernels])",
                    KernelFallbackWarning,
                    stacklevel=3,
                )
            _resolved = ("python", None)
        else:
            global _compiled_ns
            _numba_version = getattr(numba, "__version__", "unknown")
            if _compiled_ns is None:
                ns = SimpleNamespace()
                for name in _impl.KERNEL_NAMES:
                    setattr(
                        ns, name, numba.njit(cache=True)(getattr(_impl, name))
                    )
                _compiled_ns = ns
            _resolved = ("compiled", _compiled_ns)
            if not _warmed:
                warmup()
    return _resolved


def active() -> SimpleNamespace | None:
    """The kernel namespace to dispatch to, or None for the Python tier."""
    return _resolve()[1]


def active_backend() -> str:
    """The resolved backend name: ``compiled``, ``python`` or ``interpreted``."""
    return _resolve()[0]


def numba_version() -> str | None:
    """numba's version string when the compiled backend resolved, else None."""
    _resolve()
    return _numba_version


def kernel_info() -> dict[str, str | None]:
    """Provenance blob for bench records: requested/active backend + numba."""
    return {
        "requested": requested_backend(),
        "backend": active_backend(),
        "numba": numba_version(),
    }


def warmup() -> None:
    """Run every kernel once on a tiny instance to trigger (and cache) JIT.

    Called automatically when the compiled backend resolves, so the
    one-time compilation cost (a few seconds cold, ~nothing with a warm
    ``cache=True`` directory) lands at startup instead of inside the
    first timed solve.  A no-op on the ``python`` backend.
    """
    global _warmed
    ns = _resolve()[1]
    _warmed = True
    if ns is None:
        return
    # 2-node, 2-arc ring: 0 -> 1 -> 0 with one edge id each.
    indptr = np.array([0, 1, 2], dtype=np.int64)
    neighbors = np.array([1, 0], dtype=np.int64)
    edge_ids = np.array([0, 0], dtype=np.int64)
    weights = np.array([1.0])
    leaf = np.zeros(2, dtype=np.bool_)
    dist = np.zeros(2)
    parent = np.full(2, -1, dtype=np.int64)
    stamp = np.zeros(2, dtype=np.int64)
    heap_key = np.empty(8)
    heap_node = np.empty(8, dtype=np.int64)
    ns.csr_dijkstra_fill(
        indptr, neighbors, edge_ids, weights, 0, 1, leaf,
        dist, parent, stamp, 1, heap_key, heap_node,
    )
    warc = np.array([1.0, 1.0])
    pred = np.full(2, -1, dtype=np.int64)
    parc = np.full(2, -1, dtype=np.int64)
    ns.spt_tree(indptr, neighbors, warc, 0, dist, pred, parc, heap_key, heap_node)
    child_head = np.empty(2, dtype=np.int64)
    child_next = np.empty(2, dtype=np.int64)
    stack = np.empty(2, dtype=np.int64)
    ns.spt_repair(
        indptr, neighbors, warc, 0, dist, pred, parc,
        heap_key, heap_node, child_head, child_next, stack,
    )
    # One job, no blocked segments.
    rel_a = np.array([0.0])
    dl_a = np.array([2.0])
    deadlines = np.array([2.0])
    durations = np.array([1.0])
    empty = np.empty(0)
    cum = np.zeros(1)
    err = np.zeros(4)
    run_pos = np.empty(6, dtype=np.int64)
    run_a0 = np.empty(6)
    run_a1 = np.empty(6)
    heap_pos = np.empty(4, dtype=np.int64)
    ns.edf_sweep(
        rel_a, dl_a, deadlines, durations, empty, empty, cum, empty,
        1e-7, 1e-9, heap_key[:4], heap_pos, run_pos, run_a0, run_a1, err,
    )
    # One commodity, one single-edge row.
    eids = np.array([0], dtype=np.int64)
    lens = np.array([1], dtype=np.int64)
    starts = np.array([0], dtype=np.int64)
    owner = np.array([0], dtype=np.int64)
    flow = np.array([1.0])
    inv_h = np.array([1.0])
    demands = np.array([1.0])
    out = np.empty(1)
    ns.row_costs(eids, starts, lens, weights, out)
    delta = np.empty(1)
    direction = np.empty(1)
    ns.pairwise_delta(
        eids, lens, starts, owner, flow, weights, inv_h,
        demands, True, delta, direction,
    )
