"""Kernel bodies of the compiled tier (DESIGN.md Section 15).

Every function in this module is written in the nopython subset that
:mod:`numba` compiles — flat ndarray arguments, scalar locals, manual
binary heaps, no Python containers — and doubles as its own fallback:
the registry in :mod:`repro.kernels` hands out ``numba.njit``-compiled
versions when the toolchain is present (``compiled`` backend) and these
plain-Python functions verbatim under the ``interpreted`` backend, so
the pinning suites can compare the exact code path bit for bit without
numba installed.

Mirroring discipline: each kernel reproduces the arithmetic of its
array-engine sibling *operation for operation* where the result is
order-sensitive — same heap tie-breaks as ``heapq`` tuples, same
``_EPS`` guards, same sequential scatter order as ``np.bincount`` — so
shortest paths, trees and EDF schedules are bit-identical to the
retained Python tier rather than merely close.  The one caveat is
plain summation: the pricing kernels accumulate rows left to right,
while ``np.add.reduceat`` uses a blocked (SIMD-dependent) order, so
row cost sums may differ from the numpy tier in the last ulp — the
pinning suite compares them against a sequential replica exactly, and
solver-level agreement is certified by dual bounds.  Outputs land in
caller-allocated arrays; error states return as status codes the
Python wrappers re-raise with the retained engines' exact messages.
"""

from __future__ import annotations

import numpy as np

#: Kernel names exported to the backend registry (order = warm-up order).
KERNEL_NAMES = (
    "csr_dijkstra_fill",
    "spt_tree",
    "spt_repair",
    "edf_sweep",
    "row_costs",
    "pairwise_delta",
)


# ----------------------------------------------------------------------
# Early-terminating heap Dijkstra (fastpath.csr_dijkstra's inner loop).
# ----------------------------------------------------------------------
def csr_dijkstra_fill(
    indptr,
    neighbors,
    edge_ids,
    weights,
    src_id,
    dst_id,
    leaf,
    dist,
    parent,
    stamp,
    epoch,
    heap_key,
    heap_node,
):
    """Fill ``parent`` with the cheapest ``src -> dst`` tree fragment.

    Bit-identical mirror of the pure-Python loop in
    :func:`repro.routing.fastpath.csr_dijkstra`: the manual binary heap
    orders entries by ``(distance, node id)`` exactly like the
    ``heapq`` tuples there, so the settle order — and therefore the
    returned path — matches the Python tier on ties as well.  Returns 1
    when ``dst`` was settled, 0 when the pair is disconnected.
    """
    dist[src_id] = 0.0
    stamp[src_id] = epoch
    parent[src_id] = -1
    heap_key[0] = 0.0
    heap_node[0] = src_id
    hn = 1
    best_dst = np.inf
    while hn > 0:
        d = heap_key[0]
        u = heap_node[0]
        # Pop-min with (key, node) tie-break.
        hn -= 1
        lk = heap_key[hn]
        ln = heap_node[hn]
        i = 0
        while True:
            c = 2 * i + 1
            if c >= hn:
                break
            r = c + 1
            if r < hn and (
                heap_key[r] < heap_key[c]
                or (heap_key[r] == heap_key[c] and heap_node[r] < heap_node[c])
            ):
                c = r
            if heap_key[c] < lk or (
                heap_key[c] == lk and heap_node[c] < ln
            ):
                heap_key[i] = heap_key[c]
                heap_node[i] = heap_node[c]
                i = c
            else:
                break
        heap_key[i] = lk
        heap_node[i] = ln

        if u == dst_id:
            return 1
        if d > dist[u]:
            continue  # stale heap entry
        for a in range(indptr[u], indptr[u + 1]):
            v = neighbors[a]
            if leaf[v] and v != dst_id:
                continue
            nd = d + weights[edge_ids[a]]
            if nd >= best_dst:
                continue  # cannot improve the path to dst
            if stamp[v] != epoch:
                stamp[v] = epoch
            elif nd >= dist[v]:
                continue
            dist[v] = nd
            parent[v] = u
            # Push (nd, v) with the same tie-break.
            i = hn
            hn += 1
            while i > 0:
                p = (i - 1) // 2
                if heap_key[p] > nd or (
                    heap_key[p] == nd and heap_node[p] > v
                ):
                    heap_key[i] = heap_key[p]
                    heap_node[i] = heap_node[p]
                    i = p
                else:
                    break
            heap_key[i] = nd
            heap_node[i] = v
            if v == dst_id:
                best_dst = nd
    return 0


# ----------------------------------------------------------------------
# Single-source shortest-path trees for the Frank-Wolfe batch.
# ----------------------------------------------------------------------
def spt_tree(indptr, indices, warc, src, dist, pred, parc, heap_key, heap_node):
    """Full Dijkstra from ``src`` over per-arc weights ``warc``.

    Fills ``dist`` (np.inf where unreachable), ``pred`` (parent node,
    -1 at the root and off-tree) and ``parc`` (the arc index realizing
    each parent edge — what lets :func:`spt_repair` re-weigh the tree
    without lookups).  Plain lazy-deletion heap Dijkstra; ties settle
    by (distance, node id).

    Parents are then *canonicalized*: each node's parent becomes the
    first arc in CSR scan order achieving exact ``dist[u] + warc[a] ==
    dist[v]``.  That makes the tree a pure function of the weight
    vector — :func:`spt_repair` applies the same pass, so a repaired
    tree is indistinguishable from a cold recompute even on equal-cost
    ties (what keeps warm sessions bit-identical to forced-cold
    solves).  Requires strictly positive weights (the callers floor at
    1e-12), which also makes the canonical parent graph acyclic.
    """
    n = dist.size
    for v in range(n):
        dist[v] = np.inf
        pred[v] = -1
        parc[v] = -1
    dist[src] = 0.0
    heap_key[0] = 0.0
    heap_node[0] = src
    hn = 1
    while hn > 0:
        d = heap_key[0]
        u = heap_node[0]
        hn -= 1
        lk = heap_key[hn]
        ln = heap_node[hn]
        i = 0
        while True:
            c = 2 * i + 1
            if c >= hn:
                break
            r = c + 1
            if r < hn and (
                heap_key[r] < heap_key[c]
                or (heap_key[r] == heap_key[c] and heap_node[r] < heap_node[c])
            ):
                c = r
            if heap_key[c] < lk or (heap_key[c] == lk and heap_node[c] < ln):
                heap_key[i] = heap_key[c]
                heap_node[i] = heap_node[c]
                i = c
            else:
                break
        heap_key[i] = lk
        heap_node[i] = ln

        if d > dist[u]:
            continue
        for a in range(indptr[u], indptr[u + 1]):
            v = indices[a]
            nd = d + warc[a]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                parc[v] = a
                i = hn
                hn += 1
                while i > 0:
                    p = (i - 1) // 2
                    if heap_key[p] > nd or (
                        heap_key[p] == nd and heap_node[p] > v
                    ):
                        heap_key[i] = heap_key[p]
                        heap_node[i] = heap_node[p]
                        i = p
                    else:
                        break
                heap_key[i] = nd
                heap_node[i] = v
    # Canonical parents (see docstring): first arc in CSR scan order
    # with exact equality.
    for v in range(n):
        if v != src and dist[v] != np.inf:
            pred[v] = -2
    for u in range(n):
        du = dist[u]
        if du == np.inf:
            continue
        for a in range(indptr[u], indptr[u + 1]):
            v = indices[a]
            if pred[v] == -2 and du + warc[a] == dist[v]:
                pred[v] = u
                parc[v] = a


def spt_repair(
    indptr,
    indices,
    warc,
    src,
    dist,
    pred,
    parc,
    heap_key,
    heap_node,
    child_head,
    child_next,
    stack,
):
    """Incremental shortest-path-tree repair after a weight change.

    Given the previous tree (``pred``/``parc`` from :func:`spt_tree` or
    an earlier repair) and the *new* per-arc weights ``warc``:

    1. re-weigh the old tree top-down — ``dist[v] = dist[pred[v]] +
       warc[parc[v]]`` in tree order — which yields valid *upper
       bounds* (the old tree paths still exist);
    2. one arc scan seeds a heap with every node some arc can improve;
    3. Dijkstra-style label correction drains the heap.  All pushed
       keys dominate the pop front (weights are positive), so the pop
       order is monotone and every settled label is exact.

    When consecutive weight vectors are close — Frank–Wolfe iterations,
    the interval sweep's background shifts — step 3 touches only the
    cone whose shortest paths actually changed, replacing the O(full
    Dijkstra) per-source cost with O(arc scan + affected cone).  The
    final parent canonicalization pass (same as :func:`spt_tree`)
    makes the repaired tree — distances *and* parents — equal a cold
    recompute bit for bit (property-pinned in ``tests/test_kernels.
    py``), so warm sessions never diverge from cold solves on
    equal-cost ties.  Requires strictly positive weights.
    """
    n = dist.size
    # Children lists of the old tree (head/next linked lists).
    for v in range(n):
        child_head[v] = -1
    for v in range(n):
        p = pred[v]
        if p >= 0:
            child_next[v] = child_head[p]
            child_head[p] = v
    # Top-down re-weigh along the old tree.  Off-tree nodes were (and
    # stay) unreachable: positive finite weights never change
    # reachability, so their inf labels are already exact.
    dist[src] = 0.0
    top = 0
    stack[top] = src
    top += 1
    while top > 0:
        top -= 1
        u = stack[top]
        du = dist[u]
        c = child_head[u]
        while c >= 0:
            dist[c] = du + warc[parc[c]]
            stack[top] = c
            top += 1
            c = child_next[c]
    # Seed: one pass over the arcs collects every improvable label.
    hn = 0
    for u in range(n):
        du = dist[u]
        if du == np.inf:
            continue
        for a in range(indptr[u], indptr[u + 1]):
            v = indices[a]
            nd = du + warc[a]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                parc[v] = a
                i = hn
                hn += 1
                while i > 0:
                    p = (i - 1) // 2
                    if heap_key[p] > nd or (
                        heap_key[p] == nd and heap_node[p] > v
                    ):
                        heap_key[i] = heap_key[p]
                        heap_node[i] = heap_node[p]
                        i = p
                    else:
                        break
                heap_key[i] = nd
                heap_node[i] = v
    # Label correction over the affected cone.
    while hn > 0:
        d = heap_key[0]
        u = heap_node[0]
        hn -= 1
        lk = heap_key[hn]
        ln = heap_node[hn]
        i = 0
        while True:
            c = 2 * i + 1
            if c >= hn:
                break
            r = c + 1
            if r < hn and (
                heap_key[r] < heap_key[c]
                or (heap_key[r] == heap_key[c] and heap_node[r] < heap_node[c])
            ):
                c = r
            if heap_key[c] < lk or (heap_key[c] == lk and heap_node[c] < ln):
                heap_key[i] = heap_key[c]
                heap_node[i] = heap_node[c]
                i = c
            else:
                break
        heap_key[i] = lk
        heap_node[i] = ln

        if d > dist[u]:
            continue
        for a in range(indptr[u], indptr[u + 1]):
            v = indices[a]
            nd = d + warc[a]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                parc[v] = a
                i = hn
                hn += 1
                while i > 0:
                    p = (i - 1) // 2
                    if heap_key[p] > nd or (
                        heap_key[p] == nd and heap_node[p] > v
                    ):
                        heap_key[i] = heap_key[p]
                        heap_node[i] = heap_node[p]
                        i = p
                    else:
                        break
                heap_key[i] = nd
                heap_node[i] = v
    # Canonical parents (see docstring): first arc in CSR scan order
    # with exact equality.
    for v in range(n):
        if v != src and dist[v] != np.inf:
            pred[v] = -2
    for u in range(n):
        du = dist[u]
        if du == np.inf:
            continue
        for a in range(indptr[u], indptr[u + 1]):
            v = indices[a]
            if pred[v] == -2 and du + warc[a] == dist[v]:
                pred[v] = u
                parc[v] = a


# ----------------------------------------------------------------------
# EDF event sweep in available-time coordinates.
# ----------------------------------------------------------------------
def edf_sweep(
    rel_a,
    dl_a,
    deadlines,
    durations,
    bs,
    be,
    cum,
    ab,
    tol,
    eps,
    heap_key,
    heap_pos,
    run_pos,
    run_a0,
    run_a1,
    err,
):
    """The preemptive EDF sweep of ``edf_schedule_arrays``, flattened.

    Inputs are the admission-ordered available-time arrays the shared
    transform produces; outputs are the executed runs in available
    coordinates (back-mapped by the caller).  The ready heap holds
    ``(real deadline, position)`` pairs — admission order makes the
    position the exact equivalent of the Python engine's ``seq``
    tie-break, so pops match ``heapq`` bit for bit.

    ``err[0]`` returns the status: 0 ok, 1 missed deadline mid-run, 2
    finished past the deadline, 3 ran out of work (internal error);
    ``err[1:4]`` carry (position, real time, remaining work) for the
    wrapper's exact :class:`InfeasibleError` messages.  Returns the
    number of runs written.
    """
    n = rel_a.size
    remaining = durations.copy()
    hn = 0
    release_idx = 0
    finished = 0
    nruns = 0
    t = rel_a[0]
    next_rel = t
    err[0] = 0.0
    while finished < n:
        if next_rel <= t + eps:
            while release_idx < n and rel_a[release_idx] <= t + eps:
                key = deadlines[release_idx]
                pos = release_idx
                i = hn
                hn += 1
                while i > 0:
                    p = (i - 1) // 2
                    if heap_key[p] > key or (
                        heap_key[p] == key and heap_pos[p] > pos
                    ):
                        heap_key[i] = heap_key[p]
                        heap_pos[i] = heap_pos[p]
                        i = p
                    else:
                        break
                heap_key[i] = key
                heap_pos[i] = pos
                release_idx += 1
            if release_idx < n:
                next_rel = rel_a[release_idx]
            else:
                next_rel = np.inf

        if hn == 0:
            if next_rel == np.inf:
                err[0] = 3.0
                return nruns
            if next_rel > t:
                t = next_rel
            continue

        pos = heap_pos[0]
        left = remaining[pos]
        if t > dl_a[pos] - eps and left > tol:
            # Back-map t (side="right": a boundary coordinate the sweep
            # is *at* resolves to the block's end).
            lo = 0
            hi = ab.size
            while lo < hi:
                mid = (lo + hi) // 2
                if ab[mid] <= t:
                    lo = mid + 1
                else:
                    hi = mid
            missed_at = t + cum[lo]
            if missed_at > deadlines[pos] + tol:
                err[0] = 1.0
                err[1] = pos
                err[2] = missed_at
                err[3] = left
                return nruns

        run_end = t + left
        if run_end > next_rel:
            run_end = next_rel
        if nruns >= run_pos.size:
            # Caller's run buffer is full (float dust can split a run a
            # few extra times past the nominal 2n bound): report status
            # 4 so the wrapper retries with a doubled buffer.
            err[0] = 4.0
            return nruns
        run_pos[nruns] = pos
        run_a0[nruns] = t
        run_a1[nruns] = run_end
        nruns += 1
        left = left - (run_end - t)
        remaining[pos] = left
        t = run_end

        if left <= eps:
            # Pop the finished job.
            hn -= 1
            lk = heap_key[hn]
            lp = heap_pos[hn]
            i = 0
            while True:
                c = 2 * i + 1
                if c >= hn:
                    break
                r = c + 1
                if r < hn and (
                    heap_key[r] < heap_key[c]
                    or (
                        heap_key[r] == heap_key[c]
                        and heap_pos[r] < heap_pos[c]
                    )
                ):
                    c = r
                if heap_key[c] < lk or (
                    heap_key[c] == lk and heap_pos[c] < lp
                ):
                    heap_key[i] = heap_key[c]
                    heap_pos[i] = heap_pos[c]
                    i = c
                else:
                    break
            heap_key[i] = lk
            heap_pos[i] = lp
            finished += 1
            if t > dl_a[pos] - eps:
                # side="left": the run *finished* here, so a boundary
                # coordinate resolves to the block start.
                lo = 0
                hi = ab.size
                while lo < hi:
                    mid = (lo + hi) // 2
                    if ab[mid] < t:
                        lo = mid + 1
                    else:
                        hi = mid
                finished_at = t + cum[lo]
                if finished_at > deadlines[pos] + tol:
                    err[0] = 2.0
                    err[1] = pos
                    err[2] = finished_at
                    err[3] = left
                    return nruns
    return nruns


# ----------------------------------------------------------------------
# Relaxation pricing: per-row path costs and the pairwise sweep move.
# ----------------------------------------------------------------------
def row_costs(eids, starts, lens, weights, out):
    """``out[r] = sum(weights[eids[starts[r] : starts[r] + lens[r]]])``.

    Left-to-right accumulation per row.  Equivalent to the array
    tier's gather + ``np.add.reduceat`` up to summation order: numpy's
    reduceat accumulates in a blocked (SIMD-dependent) order, so the
    two can differ in the last ulp.  The pinning suite compares this
    kernel bit for bit against a sequential replica instead.
    """
    for r in range(out.size):
        s = starts[r]
        c = 0.0
        for j in range(lens[r]):
            c += weights[eids[s + j]]
        out[r] = c


def pairwise_delta(
    eids,
    lens,
    starts,
    owner,
    flow,
    weights,
    inv_h,
    demands,
    cap_at_demand,
    delta,
    direction,
):
    """One pairwise (away-step) move: per-row flow deltas + edge direction.

    Fuses the array tier's gather/reduceat path costs, the
    curvature-weighted per-commodity ``lambda``, the clipped Newton
    move with rebalanced outflow, and the direction scatter
    (``FrankWolfeSolver._pairwise_step``) into one pass.  Scatter
    accumulation mirrors ``np.bincount`` (row order, then within-row
    edge order); row cost sums run left to right, which can differ
    from ``np.add.reduceat``'s blocked order in the last ulp, so the
    pinning suite checks ``delta``/``direction`` bit for bit against a
    sequential numpy replica and leaves the solver-level agreement to
    the certified dual bounds.  Returns 1 when any row moved (the
    numpy tier's ``np.any(delta)``).
    """
    n = owner.size
    k = demands.size
    lam_num = np.zeros(k)
    lam_den = np.zeros(k)
    costs = np.empty(n)
    for r in range(n):
        s = starts[r]
        c = 0.0
        for j in range(lens[r]):
            c += weights[eids[s + j]]
        costs[r] = c
        lam_den[owner[r]] += inv_h[r]
        lam_num[owner[r]] += c * inv_h[r]
    lam = np.empty(k)
    for s in range(k):
        den = lam_den[s]
        if den < 1e-30:
            den = 1e-30
        lam[s] = lam_num[s] / den

    neg = np.empty(n)
    pos = np.empty(n)
    pos_sum = np.zeros(k)
    neg_sum = np.zeros(k)
    for r in range(n):
        o = owner[r]
        d = (lam[o] - costs[r]) * inv_h[r]
        if d < -flow[r]:
            d = -flow[r]
        if cap_at_demand and d > demands[o]:
            d = demands[o]
        if d < 0.0:
            dn = d
        else:
            dn = 0.0
        dp = d - dn
        neg[r] = dn
        pos[r] = dp
        pos_sum[o] += dp
        neg_sum[o] += -dn

    moved = 0
    for r in range(n):
        o = owner[r]
        if pos_sum[o] > 0.0:
            den = pos_sum[o]
            if den < 1e-30:
                den = 1e-30
            d = neg[r] + pos[r] * (neg_sum[o] / den)
        else:
            d = 0.0
        delta[r] = d
        if d != 0.0:
            moved = 1

    for e in range(direction.size):
        direction[e] = 0.0
    for r in range(n):
        d = delta[r]
        s = starts[r]
        for j in range(lens[r]):
            direction[eids[s + j]] += d
    return moved
