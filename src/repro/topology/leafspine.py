"""Two-tier leaf-spine topology, the workhorse of modern DCN deployments.

Every leaf (ToR) switch connects to every spine switch; hosts hang off the
leaves.  This is the natural substrate for the incast / partition-aggregate
example workloads.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["leaf_spine"]


def leaf_spine(
    num_leaves: int = 4,
    num_spines: int = 2,
    hosts_per_leaf: int = 4,
    name: str | None = None,
) -> Topology:
    """Build a full-mesh leaf-spine fabric."""
    if num_leaves < 1 or num_spines < 1:
        raise TopologyError("leaf_spine needs >= 1 leaf and >= 1 spine")
    if hosts_per_leaf < 1:
        raise TopologyError(f"hosts_per_leaf must be >= 1, got {hosts_per_leaf}")

    graph = nx.Graph()
    # Each leaf plus its hosts is a natural shard; spines stay backbone.
    groups: dict[str, str] = {}
    spines = [f"sw_spine_{s:02d}" for s in range(num_spines)]
    leaves = [f"sw_leaf_{l:02d}" for l in range(num_leaves)]
    for sw in spines + leaves:
        graph.add_node(sw, kind=SWITCH)
    for leaf in leaves:
        for spine in spines:
            graph.add_edge(leaf, spine)
    for l, leaf in enumerate(leaves):
        groups[leaf] = f"leaf{l:02d}"
        for h in range(hosts_per_leaf):
            host = f"h_l{l:02d}_{h}"
            graph.add_node(host, kind=HOST)
            graph.add_edge(host, leaf)
            groups[host] = f"leaf{l:02d}"

    return Topology(
        graph,
        name=name or f"leafspine-{num_leaves}x{num_spines}",
        groups=groups,
    )
