"""k-ary fat-tree topology (Al-Fares et al., SIGCOMM 2008).

A ``k``-ary fat-tree (``k`` even) has

* ``(k/2)^2`` core switches,
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches,
* ``k/2`` hosts per edge switch, ``k^3/4`` hosts total.

With ``k = 8`` this is 80 switches and 128 hosts — exactly the paper's
"data center network topology which consists of 80 switches (with 128
servers connected)" evaluation substrate.

Node naming (all strings, sortable):

* hosts:        ``h_p{pod:02d}_e{edge}_{i}``
* edge switch:  ``sw_e_p{pod:02d}_{edge}``
* agg switch:   ``sw_a_p{pod:02d}_{agg}``
* core switch:  ``sw_c_{i:02d}_{j:02d}`` (row i, column j in the core grid)
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["fat_tree"]


def fat_tree(k: int = 4, name: str | None = None) -> Topology:
    """Build a ``k``-ary fat-tree; ``k`` must be even and >= 2.

    Wiring follows the standard construction: edge switch ``e`` in a pod
    connects to all ``k/2`` aggregation switches of its pod; aggregation
    switch ``a`` of every pod connects to core switches ``(a, j)`` for
    ``j in range(k/2)``.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree requires even k >= 2, got {k}")
    half = k // 2
    graph = nx.Graph()
    # Pods are the natural sharding boundary; core switches stay backbone.
    groups: dict[str, str] = {}

    core = [[f"sw_c_{i:02d}_{j:02d}" for j in range(half)] for i in range(half)]
    for row in core:
        for sw in row:
            graph.add_node(sw, kind=SWITCH)

    for pod in range(k):
        pod_group = f"pod{pod:02d}"
        aggs = [f"sw_a_p{pod:02d}_{a}" for a in range(half)]
        edges = [f"sw_e_p{pod:02d}_{e}" for e in range(half)]
        for sw in aggs + edges:
            graph.add_node(sw, kind=SWITCH)
            groups[sw] = pod_group
        for agg in aggs:
            for edge in edges:
                graph.add_edge(agg, edge)
        for a, agg in enumerate(aggs):
            for j in range(half):
                graph.add_edge(agg, core[a][j])
        for e, edge in enumerate(edges):
            for i in range(half):
                host = f"h_p{pod:02d}_e{e}_{i}"
                graph.add_node(host, kind=HOST)
                graph.add_edge(host, edge)
                groups[host] = pod_group

    return Topology(graph, name=name or f"fattree-k{k}", groups=groups)
