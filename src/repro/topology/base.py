"""Topology abstraction over :mod:`networkx` used throughout the library.

A data center network is an **undirected** graph whose nodes are either
hosts (servers) or switches.  Links are undirected and identical (the paper
assumes commodity switches), each governed by one shared transmission rate
``x_e(t)`` regardless of direction — see DESIGN.md Section 5.

Edges are addressed by a *canonical* ``(u, v)`` tuple with ``u < v`` (node
ids are strings) so that dictionaries keyed by edges are direction-agnostic.
The class also maintains the integer indexing and a directed-arc CSR
adjacency (``indptr`` / ``neighbors`` / ``edge_ids``, compiled once per
topology and cached) shared by every array-native shortest-path consumer:
the Frank–Wolfe solver's batched :func:`scipy.sparse.csgraph.dijkstra`
and the routing core in :mod:`repro.routing.fastpath`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.errors import TopologyError

__all__ = ["Edge", "Topology", "canonical_edge", "path_edges"]

Edge = tuple[str, str]

HOST = "host"
SWITCH = "switch"


def canonical_edge(u: str, v: str) -> Edge:
    """Return the direction-agnostic representative of link ``{u, v}``."""
    if u == v:
        raise TopologyError(f"self-loop edge ({u!r}, {v!r}) is not a link")
    return (u, v) if u < v else (v, u)


def path_edges(path: Sequence[str]) -> tuple[Edge, ...]:
    """Canonical edges along a node path ``[n0, n1, ..., nk]``."""
    if len(path) < 2:
        raise TopologyError(f"path must have at least 2 nodes, got {list(path)!r}")
    return tuple(canonical_edge(a, b) for a, b in zip(path, path[1:]))


class Topology:
    """An undirected DCN graph with host/switch roles and edge indexing.

    Parameters
    ----------
    graph:
        Undirected :class:`networkx.Graph`; every node must carry a
        ``kind`` attribute equal to ``"host"`` or ``"switch"``.
    name:
        Human-readable topology name used in reports.
    groups:
        Optional partition metadata: a partial mapping from node id to the
        label of the *natural locality group* it belongs to (a fat-tree
        pod, a leaf-spine leaf).  Nodes absent from the mapping are
        *backbone* (core/spine) — shared fabric that belongs to no group.
        Consumed by :mod:`repro.service.partition` to shard the topology
        on its natural boundaries.
    """

    def __init__(
        self,
        graph: nx.Graph,
        name: str = "topology",
        groups: Mapping[str, str] | None = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("topology must have at least one node")
        for node, data in graph.nodes(data=True):
            if not isinstance(node, str):
                raise TopologyError(
                    f"node ids must be strings, got {node!r} ({type(node).__name__})"
                )
            if data.get("kind") not in (HOST, SWITCH):
                raise TopologyError(
                    f"node {node!r} must have kind 'host' or 'switch', "
                    f"got {data.get('kind')!r}"
                )
        self._graph = graph
        self.name = name
        self._groups: dict[str, str] = dict(groups) if groups else {}
        for node in self._groups:
            if not graph.has_node(node):
                raise TopologyError(
                    f"group metadata names unknown node {node!r}"
                )

        self._edges: tuple[Edge, ...] = tuple(
            sorted(canonical_edge(u, v) for u, v in graph.edges())
        )
        self._edge_index: dict[Edge, int] = {
            e: i for i, e in enumerate(self._edges)
        }
        self._nodes: tuple[str, ...] = tuple(sorted(graph.nodes()))
        self._node_index: dict[str, int] = {n: i for i, n in enumerate(self._nodes)}

        # Directed-arc CSR adjacency, compiled lazily on first use.
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._csr_lists: tuple[list[int], list[int], list[int]] | None = None
        self._leaf_mask: list[bool] | None = None

    # ------------------------------------------------------------------
    # Basic accessors.
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (do not mutate)."""
        return self._graph

    @property
    def nodes(self) -> tuple[str, ...]:
        """All node ids, sorted."""
        return self._nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All canonical edges, sorted."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def hosts(self) -> tuple[str, ...]:
        """Server nodes, sorted."""
        return tuple(
            n for n in self._nodes if self._graph.nodes[n]["kind"] == HOST
        )

    @property
    def switches(self) -> tuple[str, ...]:
        """Switch nodes, sorted."""
        return tuple(
            n for n in self._nodes if self._graph.nodes[n]["kind"] == SWITCH
        )

    @property
    def node_groups(self) -> Mapping[str, str]:
        """Natural-locality group labels (partial; empty when unannotated).

        Nodes missing from the mapping are backbone fabric (core/spine
        switches) shared by every group.  Do not mutate.
        """
        return self._groups

    def has_node(self, node: str) -> bool:
        return node in self._node_index

    def edge_id(self, edge: Edge) -> int:
        """Dense integer id of a canonical edge (for numpy vectors)."""
        try:
            return self._edge_index[edge]
        except KeyError:
            raise TopologyError(f"edge {edge!r} not in topology {self.name!r}")

    def node_id(self, node: str) -> int:
        try:
            return self._node_index[node]
        except KeyError:
            raise TopologyError(f"node {node!r} not in topology {self.name!r}")

    def node_at(self, index: int) -> str:
        return self._nodes[index]

    def degree(self, node: str) -> int:
        return int(self._graph.degree[node])

    def neighbors(self, node: str) -> Iterator[str]:
        return iter(self._graph.neighbors(node))

    def __contains__(self, node: str) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, hosts={len(self.hosts)}, "
            f"switches={len(self.switches)}, links={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Vector/CSR plumbing for solvers.
    # ------------------------------------------------------------------
    def _compile_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build (once) the directed-arc CSR adjacency.

        Each undirected edge contributes two arcs.  ``edge_ids`` maps the
        arc position in the CSR data array back to the undirected edge id.
        """
        if self._csr is None:
            rows: list[int] = []
            cols: list[int] = []
            arc_edge: list[int] = []
            for eid, (u, v) in enumerate(self._edges):
                ui, vi = self._node_index[u], self._node_index[v]
                rows.append(ui)
                cols.append(vi)
                arc_edge.append(eid)
                rows.append(vi)
                cols.append(ui)
                arc_edge.append(eid)
            order = np.lexsort((np.asarray(cols), np.asarray(rows)))
            row_arr = np.asarray(rows, dtype=np.int64)[order]
            neighbors = np.asarray(cols, dtype=np.int64)[order]
            edge_ids = np.asarray(arc_edge, dtype=np.int64)[order]
            indptr = np.zeros(len(self._nodes) + 1, dtype=np.int64)
            np.add.at(indptr, row_arr + 1, 1)
            self._csr = (np.cumsum(indptr), neighbors, edge_ids)
        return self._csr

    @property
    def csr_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, neighbors, edge_ids)`` int arrays of the directed-arc
        CSR adjacency (compiled once and cached).

        ``neighbors[indptr[u]:indptr[u + 1]]`` are the neighbor node ids of
        node ``u`` (see :meth:`node_id`), sorted; the parallel slice of
        ``edge_ids`` gives each arc's undirected edge id, the index into
        every per-edge vector in this library.  Do not mutate.
        """
        return self._compile_csr()

    @property
    def csr_adjacency_lists(self) -> tuple[list[int], list[int], list[int]]:
        """The CSR adjacency as plain Python int lists (cached).

        Pure-Python shortest-path kernels (:func:`repro.routing.fastpath.
        csr_dijkstra`) iterate these ~2x faster than numpy scalars.
        """
        if self._csr_lists is None:
            indptr, neighbors, edge_ids = self._compile_csr()
            self._csr_lists = (
                indptr.tolist(),
                neighbors.tolist(),
                edge_ids.tolist(),
            )
        return self._csr_lists

    @property
    def leaf_mask(self) -> list[bool]:
        """Per-node-id flags marking degree-1 nodes (cached).

        A degree-1 node can never be interior to a simple path, so
        shortest-path kernels skip arcs into flagged nodes unless they
        are the destination.
        """
        if self._leaf_mask is None:
            indptr, _, _ = self._compile_csr()
            self._leaf_mask = (np.diff(indptr) == 1).tolist()
        return self._leaf_mask

    def csr_components(
        self, edge_weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR ``(data, indices, indptr)`` with per-arc weights.

        ``edge_weights`` is a dense vector indexed by edge id; both arcs of
        an undirected edge receive the same weight.
        """
        if edge_weights.shape != (self.num_edges,):
            raise TopologyError(
                f"edge_weights must have shape ({self.num_edges},), "
                f"got {edge_weights.shape}"
            )
        indptr, neighbors, edge_ids = self._compile_csr()
        data = edge_weights[edge_ids]
        return data, neighbors, indptr

    def edge_vector(self, values: Mapping[Edge, float] | None = None) -> np.ndarray:
        """Dense edge-indexed vector, optionally initialized from a mapping."""
        vec = np.zeros(self.num_edges)
        if values:
            for edge, value in values.items():
                vec[self.edge_id(edge)] = value
        return vec

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str) -> tuple[str, ...]:
        """Deterministic hop-count shortest path (lexicographic tie-break).

        Uses a BFS that expands neighbors in sorted order, so repeated calls
        and different platforms produce identical routes — important for the
        SP+MCF baseline to be reproducible.
        """
        if src == dst:
            raise TopologyError("shortest_path requires distinct endpoints")
        if not self.has_node(src) or not self.has_node(dst):
            raise TopologyError(f"unknown endpoint in ({src!r}, {dst!r})")
        parent: dict[str, str] = {src: src}
        frontier = [src]
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for nbr in sorted(self._graph.neighbors(node)):
                    if nbr not in parent:
                        parent[nbr] = node
                        if nbr == dst:
                            path = [dst]
                            while path[-1] != src:
                                path.append(parent[path[-1]])
                            return tuple(reversed(path))
                        next_frontier.append(nbr)
            frontier = next_frontier
        raise TopologyError(f"no path between {src!r} and {dst!r}")

    def validate_path(self, path: Sequence[str], src: str, dst: str) -> None:
        """Raise :class:`TopologyError` unless ``path`` is a simple
        ``src -> dst`` walk over existing links."""
        if not path or path[0] != src or path[-1] != dst:
            raise TopologyError(
                f"path must start at {src!r} and end at {dst!r}, got {list(path)!r}"
            )
        if len(set(path)) != len(path):
            raise TopologyError(f"path revisits a node: {list(path)!r}")
        for a, b in zip(path, path[1:]):
            if not self._graph.has_edge(a, b):
                raise TopologyError(f"({a!r}, {b!r}) is not a link")

    def path_length(self, path: Sequence[str]) -> int:
        """Number of links on a node path (``|P|`` in the paper)."""
        return len(path) - 1


def build_topology(
    links: Iterable[tuple[str, str]],
    hosts: Iterable[str],
    name: str = "custom",
) -> Topology:
    """Assemble a :class:`Topology` from a link list.

    Every node appearing in ``links`` but not listed in ``hosts`` is marked
    as a switch.  Convenient for tests and small hand-built networks.
    """
    graph = nx.Graph()
    host_set = set(hosts)
    for u, v in links:
        graph.add_edge(u, v)
    for node in graph.nodes:
        graph.nodes[node]["kind"] = HOST if node in host_set else SWITCH
    missing = host_set - set(graph.nodes)
    if missing:
        raise TopologyError(f"hosts {sorted(missing)!r} do not appear in links")
    return Topology(graph, name=name)
