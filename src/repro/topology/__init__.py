"""Data center network topologies."""

from repro.topology.base import (
    Edge,
    Topology,
    build_topology,
    canonical_edge,
    path_edges,
)
from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.leafspine import leaf_spine
from repro.topology.random_graphs import jellyfish
from repro.topology.simple import (
    LINKS_PER_PARALLEL_PATH,
    dumbbell,
    line,
    parallel_paths,
    pod_mesh,
    star,
)
from repro.topology.vl2 import vl2

__all__ = [
    "Edge",
    "Topology",
    "build_topology",
    "canonical_edge",
    "path_edges",
    "fat_tree",
    "bcube",
    "vl2",
    "leaf_spine",
    "jellyfish",
    "line",
    "star",
    "dumbbell",
    "parallel_paths",
    "pod_mesh",
    "LINKS_PER_PARALLEL_PATH",
]
