"""VL2 topology (Greenberg et al., SIGCOMM 2009) — a folded-Clos DCN.

``vl2(d_a, d_i, hosts_per_tor)`` builds:

* ``d_a / 2`` intermediate (spine) switches,
* ``d_i`` aggregation switches, each wired to every intermediate switch,
* ``d_a * d_i / 4`` top-of-rack (ToR) switches; each ToR connects to two
  aggregation switches (consecutive pair, wrap-around),
* ``hosts_per_tor`` servers per ToR.

The defaults give a small but structurally faithful VL2 instance.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["vl2"]


def vl2(
    d_a: int = 4,
    d_i: int = 4,
    hosts_per_tor: int = 2,
    name: str | None = None,
) -> Topology:
    """Build a VL2 folded-Clos topology.

    Parameters
    ----------
    d_a:
        Aggregation switch degree facing intermediates; must be even >= 2.
    d_i:
        Number of aggregation switches; must be even >= 2.
    hosts_per_tor:
        Servers attached to each top-of-rack switch.
    """
    if d_a < 2 or d_a % 2 != 0:
        raise TopologyError(f"vl2 requires even d_a >= 2, got {d_a}")
    if d_i < 2 or d_i % 2 != 0:
        raise TopologyError(f"vl2 requires even d_i >= 2, got {d_i}")
    if hosts_per_tor < 1:
        raise TopologyError(f"hosts_per_tor must be >= 1, got {hosts_per_tor}")

    graph = nx.Graph()
    intermediates = [f"sw_int_{i:02d}" for i in range(d_a // 2)]
    aggregates = [f"sw_agg_{i:02d}" for i in range(d_i)]
    num_tors = d_a * d_i // 4
    tors = [f"sw_tor_{i:03d}" for i in range(num_tors)]

    for sw in intermediates + aggregates + tors:
        graph.add_node(sw, kind=SWITCH)

    for agg in aggregates:
        for intermediate in intermediates:
            graph.add_edge(agg, intermediate)

    for t, tor in enumerate(tors):
        a = (2 * t) % d_i
        graph.add_edge(tor, aggregates[a])
        graph.add_edge(tor, aggregates[(a + 1) % d_i])
        for h in range(hosts_per_tor):
            host = f"h_t{t:03d}_{h}"
            graph.add_node(host, kind=HOST)
            graph.add_edge(host, tor)

    return Topology(graph, name=name or f"vl2-da{d_a}-di{d_i}")
