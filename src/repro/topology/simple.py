"""Small hand-analyzable topologies: line, star, dumbbell, parallel paths.

These are the networks used by the paper's worked example (Fig. 1) and by
the NP-hardness reductions (Theorems 2 and 3), plus a couple of classics
that make good unit-test fixtures.

.. note::

   The reductions use ``k`` *parallel links* between a source and a sink.
   :class:`networkx.Graph` cannot represent parallel edges, and the whole
   library keys on simple canonical edges, so :func:`parallel_paths`
   realizes each parallel link as a 2-hop relay path ``src - relay_i - dst``.
   Every route then crosses exactly 2 links, which scales all energies by a
   uniform factor of 2 and leaves the reductions' *ratios* untouched; the
   :mod:`repro.hardness` module accounts for the factor explicitly.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["line", "star", "dumbbell", "parallel_paths", "pod_mesh"]


def line(num_nodes: int = 3, name: str | None = None) -> Topology:
    """A path graph ``n0 - n1 - ... - n{k-1}``; every node is a host.

    The paper's Example 1 uses ``line(3)`` with nodes ``A = n0``,
    ``B = n1``, ``C = n2``.
    """
    if num_nodes < 2:
        raise TopologyError(f"line needs >= 2 nodes, got {num_nodes}")
    graph = nx.Graph()
    names = [f"n{i}" for i in range(num_nodes)]
    for node in names:
        graph.add_node(node, kind=HOST)
    for a, b in zip(names, names[1:]):
        graph.add_edge(a, b)
    return Topology(graph, name=name or f"line-{num_nodes}")


def star(num_leaves: int = 4, name: str | None = None) -> Topology:
    """One central switch ``hub`` with ``num_leaves`` host leaves."""
    if num_leaves < 2:
        raise TopologyError(f"star needs >= 2 leaves, got {num_leaves}")
    graph = nx.Graph()
    graph.add_node("hub", kind=SWITCH)
    for i in range(num_leaves):
        leaf = f"h{i}"
        graph.add_node(leaf, kind=HOST)
        graph.add_edge("hub", leaf)
    return Topology(graph, name=name or f"star-{num_leaves}")


def dumbbell(num_left: int = 2, num_right: int = 2, name: str | None = None) -> Topology:
    """Two access switches joined by one bottleneck link, hosts on each side."""
    if num_left < 1 or num_right < 1:
        raise TopologyError("dumbbell needs >= 1 host on each side")
    graph = nx.Graph()
    graph.add_node("swL", kind=SWITCH)
    graph.add_node("swR", kind=SWITCH)
    graph.add_edge("swL", "swR")
    for i in range(num_left):
        host = f"l{i}"
        graph.add_node(host, kind=HOST)
        graph.add_edge(host, "swL")
    for i in range(num_right):
        host = f"r{i}"
        graph.add_node(host, kind=HOST)
        graph.add_edge(host, "swR")
    return Topology(graph, name=name or f"dumbbell-{num_left}x{num_right}")


def parallel_paths(num_paths: int, name: str | None = None) -> Topology:
    """``src`` and ``dst`` hosts joined by ``num_paths`` disjoint relay paths.

    Used by the Theorem 2/3 reduction instances: choosing a route for a flow
    is exactly choosing which of the ``num_paths`` "links" carries it.  Each
    relay path has 2 physical links (see module note).
    """
    if num_paths < 1:
        raise TopologyError(f"need >= 1 parallel path, got {num_paths}")
    graph = nx.Graph()
    graph.add_node("src", kind=HOST)
    graph.add_node("dst", kind=HOST)
    for i in range(num_paths):
        relay = f"m{i:03d}"
        graph.add_node(relay, kind=SWITCH)
        graph.add_edge("src", relay)
        graph.add_edge(relay, "dst")
    return Topology(graph, name=name or f"parallel-{num_paths}")


def pod_mesh(
    num_pods: int = 4, hosts_per_pod: int = 2, name: str | None = None
) -> Topology:
    """A full mesh of pod switches, ``hosts_per_pod`` hosts under each.

    The spineless inter-pod mesh of small private WANs: every pod pair has
    one direct inter-switch link plus two-hop detours through every other
    pod.  Unlike Clos fabrics, route overlap between pod pairs is
    *asymmetric* — pair ``(A, B)``'s detour through ``C`` shares links with
    pair ``(C, B)``'s direct route — which is what gives sequential
    (window-greedy) routing a real regret against clairvoyant routing and
    makes this the ABL-LOOKAHEAD testbed.
    """
    if num_pods < 3:
        raise TopologyError(f"pod mesh needs >= 3 pods, got {num_pods}")
    if hosts_per_pod < 1:
        raise TopologyError(
            f"pod mesh needs >= 1 host per pod, got {hosts_per_pod}"
        )
    graph = nx.Graph()
    switches = [f"sw{p}" for p in range(num_pods)]
    for sw in switches:
        graph.add_node(sw, kind=SWITCH)
    for i in range(num_pods):
        for j in range(i + 1, num_pods):
            graph.add_edge(switches[i], switches[j])
    for p in range(num_pods):
        for h in range(hosts_per_pod):
            host = f"p{p}h{h}"
            graph.add_node(host, kind=HOST)
            graph.add_edge(host, switches[p])
    return Topology(
        graph, name=name or f"pod_mesh-{num_pods}x{hosts_per_pod}"
    )


#: Number of physical links on each relay path of :func:`parallel_paths`;
#: reduction arithmetic multiplies single-link energies by this constant.
LINKS_PER_PARALLEL_PATH = 2
