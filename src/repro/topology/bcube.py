"""BCube topology (Guo et al., SIGCOMM 2009).

``BCube(n, k)`` is a server-centric recursive topology:

* ``n^(k+1)`` servers, each identified by a ``k+1`` digit base-``n`` address;
* ``k+1`` levels of switches, ``n^k`` switches per level;
* the level-``l`` switch with index ``(prefix, suffix)`` connects the ``n``
  servers whose addresses agree everywhere except digit ``l``.

Servers have ``k+1`` ports (one per level) and participate in forwarding —
which our undirected host/switch graph represents naturally because paths
may pass through host nodes.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["bcube"]


def bcube(n: int = 4, k: int = 1, name: str | None = None) -> Topology:
    """Build ``BCube(n, k)``: ``n`` server ports per switch, recursion depth ``k``.

    ``BCube(4, 1)`` has 16 servers and 8 switches; ``BCube(8, 1)`` has 64
    servers and 16 switches.
    """
    if n < 2:
        raise TopologyError(f"bcube requires n >= 2 servers per switch, got {n}")
    if k < 0:
        raise TopologyError(f"bcube requires k >= 0, got {k}")
    graph = nx.Graph()

    addresses = list(itertools.product(range(n), repeat=k + 1))
    for addr in addresses:
        server = "srv_" + "".join(str(d) for d in addr)
        graph.add_node(server, kind=HOST)

    for level in range(k + 1):
        # A level-`level` switch is identified by the k digits of the server
        # address with digit `level` removed.
        for rest in itertools.product(range(n), repeat=k):
            switch = f"sw_l{level}_" + "".join(str(d) for d in rest)
            graph.add_node(switch, kind=SWITCH)
            for digit in range(n):
                addr = rest[:level] + (digit,) + rest[level:]
                server = "srv_" + "".join(str(d) for d in addr)
                graph.add_edge(switch, server)

    return Topology(graph, name=name or f"bcube-n{n}-k{k}")
