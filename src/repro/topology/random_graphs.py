"""Randomized topologies: Jellyfish-style random regular switch fabrics.

Jellyfish (Singla et al., NSDI 2012) wires top-of-rack switches as a random
regular graph and attaches hosts to each switch.  We use it as the
"unstructured" point in the topology ablation (ABL-TOPO in DESIGN.md).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import HOST, SWITCH, Topology

__all__ = ["jellyfish"]


def jellyfish(
    num_switches: int = 16,
    switch_degree: int = 4,
    hosts_per_switch: int = 2,
    seed: int = 0,
    name: str | None = None,
) -> Topology:
    """Random ``switch_degree``-regular switch fabric with attached hosts.

    Retries the random-regular construction until the switch graph is
    connected (a handful of attempts suffices for the sizes we use).
    """
    if num_switches < switch_degree + 1:
        raise TopologyError(
            f"need num_switches > switch_degree, got {num_switches} <= {switch_degree}"
        )
    if (num_switches * switch_degree) % 2 != 0:
        raise TopologyError(
            "num_switches * switch_degree must be even for a regular graph"
        )
    if hosts_per_switch < 1:
        raise TopologyError(f"hosts_per_switch must be >= 1, got {hosts_per_switch}")

    core = None
    for attempt in range(64):
        candidate = nx.random_regular_graph(
            switch_degree, num_switches, seed=seed + attempt
        )
        if nx.is_connected(candidate):
            core = candidate
            break
    if core is None:
        raise TopologyError(
            "failed to draw a connected random regular graph after 64 attempts"
        )

    graph = nx.Graph()
    switch_names = [f"sw_{i:03d}" for i in range(num_switches)]
    for sw in switch_names:
        graph.add_node(sw, kind=SWITCH)
    for u, v in core.edges():
        graph.add_edge(switch_names[u], switch_names[v])
    for s, sw in enumerate(switch_names):
        for h in range(hosts_per_switch):
            host = f"h_s{s:03d}_{h}"
            graph.add_node(host, kind=HOST)
            graph.add_edge(host, sw)

    return Topology(graph, name=name or f"jellyfish-{num_switches}x{switch_degree}")
