"""Mid-replay fault injection: seeded link churn and worker crashes.

:mod:`repro.sim.failures` degrades a fabric *before* a run.  This module
is the streaming counterpart (ROADMAP direction 3): a
:class:`FaultSchedule` is a time-ordered sequence of :class:`FaultEvent`
items — link-down, link-up, and shard-worker-crash — that the replay
engines merge into the arrival stream and apply at window boundaries.
Events are first-class trace citizens: the JSONL trace store serializes
them (:meth:`FaultEvent.to_record`), :class:`~repro.traces.store.
TraceReader` can yield them inline, and
:meth:`FaultSchedule.generate` draws a seeded, connectivity-safe churn
process so policy × failure-rate grids are reproducible.

Two small routing helpers live here too, because everything that must
reason about "the fabric minus the currently dead links" shares them:

* :func:`survivor_shortest_path` — the deterministic BFS of
  :meth:`~repro.topology.base.Topology.shortest_path` restricted to the
  surviving links (same sorted-neighbor tie-break, so with no dead links
  it returns the identical route);
* :func:`survivor_topology` — the induced :class:`Topology` on the
  surviving links plus the edge-id map back to the parent, which is what
  lets the relaxation repair tier re-solve affected flows on the honest
  survivor fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.topology.base import Edge, Topology, canonical_edge

__all__ = [
    "FailureDomain",
    "FaultEvent",
    "FaultSchedule",
    "survivor_shortest_path",
    "survivor_topology",
    "switch_domains",
]

LINK_DOWN = "link_down"
LINK_UP = "link_up"
WORKER_CRASH = "worker_crash"
SWITCH_DOWN = "switch_down"
SWITCH_UP = "switch_up"
SRLG_DOWN = "srlg_down"
SRLG_UP = "srlg_up"

_KINDS = (
    LINK_DOWN,
    LINK_UP,
    WORKER_CRASH,
    SWITCH_DOWN,
    SWITCH_UP,
    SRLG_DOWN,
    SRLG_UP,
)
#: Kinds that take fabric capacity away / give it back.  A domain kind
#: expands to its member links *atomically* — every member link fails (or
#: recovers) at the same instant, before any repair routing runs.
DOWN_KINDS = (LINK_DOWN, SWITCH_DOWN, SRLG_DOWN)
UP_KINDS = (LINK_UP, SWITCH_UP, SRLG_UP)
_DOMAIN_KINDS = (SWITCH_DOWN, SWITCH_UP, SRLG_DOWN, SRLG_UP)


def _canonical_edges(edges: Iterable[Edge]) -> tuple[Edge, ...]:
    """Canonicalize, dedupe, and sort an edge collection (stable member
    order: expansions and serializations never depend on input order)."""
    return tuple(sorted({canonical_edge(*e) for e in edges}))


@dataclass(frozen=True)
class FailureDomain:
    """A named shared-risk link group: links that fail *together*.

    ``edges`` is the canonical, sorted, deduplicated member set.  A
    whole-switch domain additionally records its ``node`` — its members
    are every link incident to that switch, and its events use the
    ``switch_down``/``switch_up`` kinds (self-describing given the
    topology); arbitrary SRLGs (a conduit, a line card) carry their
    member edges on the events themselves (``srlg_down``/``srlg_up``),
    so a serialized schedule round-trips without an external registry.
    """

    name: str
    edges: tuple[Edge, ...]
    node: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("failure domain requires a name")
        if not self.edges:
            raise ValidationError(
                f"failure domain {self.name!r} has no member links"
            )
        object.__setattr__(self, "edges", _canonical_edges(self.edges))

    @classmethod
    def switch(cls, topology: Topology, node: str) -> "FailureDomain":
        """The whole-switch domain: every link incident to ``node``."""
        if not topology.has_node(node):
            raise ValidationError(f"unknown node {node!r}")
        incident = [
            canonical_edge(node, nbr)
            for nbr in topology.graph.neighbors(node)
        ]
        return cls(name=f"switch:{node}", edges=tuple(incident), node=node)

    @classmethod
    def srlg(cls, name: str, edges: Iterable[Edge]) -> "FailureDomain":
        return cls(name=name, edges=tuple(edges))

    def member_edge_ids(self, topology: Topology) -> frozenset[int]:
        return frozenset(topology.edge_id(e) for e in self.edges)

    def down_event(self, time: float) -> "FaultEvent":
        if self.node is not None:
            return FaultEvent(time=time, kind=SWITCH_DOWN, node=self.node)
        return FaultEvent(
            time=time, kind=SRLG_DOWN, domain=self.name, edges=self.edges
        )

    def up_event(self, time: float) -> "FaultEvent":
        if self.node is not None:
            return FaultEvent(time=time, kind=SWITCH_UP, node=self.node)
        return FaultEvent(
            time=time, kind=SRLG_UP, domain=self.name, edges=self.edges
        )


def switch_domains(
    topology: Topology, *, switches_only: bool = True
) -> tuple[FailureDomain, ...]:
    """One whole-switch :class:`FailureDomain` per (sorted) switch node."""
    hosts = set(topology.hosts)
    return tuple(
        FailureDomain.switch(topology, node)
        for node in sorted(topology.graph.nodes)
        if not (switches_only and node in hosts)
    )


@dataclass(frozen=True)
class FaultEvent:
    """One fault or recovery, timestamped in trace time.

    ``edge`` (canonical, sorted endpoints) is required for the link
    kinds; ``shard`` is required for ``worker_crash`` and names the shard
    worker index the sharded service should kill; ``node`` is required
    for the whole-switch kinds (the outage covers every incident link);
    ``domain`` plus the member ``edges`` are required for the SRLG kinds
    (the event is self-contained — serialized schedules need no external
    domain registry).
    """

    time: float
    kind: str
    edge: Edge | None = None
    shard: int | None = None
    node: str | None = None
    domain: str | None = None
    edges: tuple[Edge, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.kind in (LINK_DOWN, LINK_UP):
            if self.edge is None:
                raise ValidationError(f"{self.kind} event requires an edge")
            object.__setattr__(self, "edge", canonical_edge(*self.edge))
        elif self.kind in (SWITCH_DOWN, SWITCH_UP):
            if not self.node:
                raise ValidationError(f"{self.kind} event requires a node")
        elif self.kind in (SRLG_DOWN, SRLG_UP):
            if not self.domain:
                raise ValidationError(
                    f"{self.kind} event requires a domain name"
                )
            if not self.edges:
                raise ValidationError(
                    f"{self.kind} event requires the member edges"
                )
            object.__setattr__(self, "edges", _canonical_edges(self.edges))
        elif self.shard is None or self.shard < 0:
            raise ValidationError(
                f"worker_crash event requires a shard index >= 0, "
                f"got {self.shard!r}"
            )

    @property
    def is_link(self) -> bool:
        return self.kind in (LINK_DOWN, LINK_UP)

    @property
    def is_domain(self) -> bool:
        return self.kind in _DOMAIN_KINDS

    @property
    def is_fabric(self) -> bool:
        """Does this event change fabric capacity (vs. kill a worker)?"""
        return self.kind != WORKER_CRASH

    @property
    def is_down(self) -> bool:
        return self.kind in DOWN_KINDS

    def domain_key(self) -> str | None:
        """The risk-group name this event belongs to (None for raw link
        and worker events).  Whole-switch domains use ``switch:<node>``,
        matching :meth:`FailureDomain.switch`."""
        if self.kind in (SWITCH_DOWN, SWITCH_UP):
            return f"switch:{self.node}"
        if self.kind in (SRLG_DOWN, SRLG_UP):
            return self.domain
        return None

    def member_edges(self, topology: Topology) -> tuple[Edge, ...]:
        """The canonical member links this event takes down / brings up,
        in stable (sorted) order.  Raw link events expand to themselves;
        worker events have no members."""
        if self.kind in (LINK_DOWN, LINK_UP):
            return (self.edge,)
        if self.kind in (SWITCH_DOWN, SWITCH_UP):
            if not topology.has_node(self.node):
                raise ValidationError(
                    f"{self.kind} targets unknown node {self.node!r}"
                )
            return _canonical_edges(
                canonical_edge(self.node, nbr)
                for nbr in topology.graph.neighbors(self.node)
            )
        if self.kind in (SRLG_DOWN, SRLG_UP):
            return self.edges
        return ()

    def expand(self, topology: Topology) -> tuple["FaultEvent", ...]:
        """The equivalent raw link events, one per member link, all at
        this event's timestamp (the atomic multi-link outage a domain
        event denotes).  Worker events expand to themselves."""
        if not self.is_fabric:
            return (self,)
        kind = LINK_DOWN if self.is_down else LINK_UP
        return tuple(
            FaultEvent(time=self.time, kind=kind, edge=edge)
            for edge in self.member_edges(topology)
        )

    def to_record(self) -> dict:
        """JSONL-ready plain-data form (see :mod:`repro.traces.store`)."""
        record: dict = {"event": self.kind, "time": self.time}
        if self.edge is not None:
            record["edge"] = list(self.edge)
        if self.shard is not None:
            record["shard"] = self.shard
        if self.node is not None:
            record["node"] = self.node
        if self.domain is not None:
            record["domain"] = self.domain
        if self.edges is not None:
            record["edges"] = [list(e) for e in self.edges]
        return record

    @classmethod
    def from_record(cls, record: dict, where: str = "fault") -> "FaultEvent":
        try:
            edge = record.get("edge")
            edges = record.get("edges")
            return cls(
                time=float(record["time"]),
                kind=record["event"],
                edge=tuple(edge) if edge is not None else None,
                shard=record.get("shard"),
                node=record.get("node"),
                domain=record.get("domain"),
                edges=(
                    tuple(tuple(e) for e in edges)
                    if edges is not None
                    else None
                ),
            )
        except KeyError as exc:
            raise ValidationError(f"{where}: missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"{where}: bad field value ({exc})") from exc


class FaultSchedule:
    """A time-ordered, immutable sequence of :class:`FaultEvent` items.

    The constructor sorts stably by time (events at equal times keep
    their given order — a down and an up of the same link at the same
    instant apply in sequence) and validates event pairing *per source*:
    a raw link may not go down twice without an up in between, nor up
    while up, and a failure domain (switch or SRLG) must likewise
    alternate down/up, with an SRLG's up event carrying the same member
    set as its down.  **Overlap across sources is legal**: a link may be
    covered by a down domain *and* a concurrent raw ``link_down`` (or by
    two overlapping down domains) — the appliers count per-link outage
    multiplicity, and a link recovers only when every covering outage
    has lifted.  Only the same-source double-down is rejected, because
    it has no well-defined pairing.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(events, key=lambda e: e.time)
        down: set[Edge] = set()
        down_domains: dict[str, tuple[Edge, ...] | None] = {}
        for event in ordered:
            if event.kind == LINK_DOWN:
                if event.edge in down:
                    raise ValidationError(
                        f"link {event.edge!r} goes down twice (at t="
                        f"{event.time}) without recovering"
                    )
                down.add(event.edge)
            elif event.kind == LINK_UP:
                if event.edge not in down:
                    raise ValidationError(
                        f"link {event.edge!r} recovers at t={event.time} "
                        "without having failed"
                    )
                down.discard(event.edge)
            elif event.kind in (SWITCH_DOWN, SRLG_DOWN):
                key = event.domain_key()
                if key in down_domains:
                    raise ValidationError(
                        f"failure domain {key!r} goes down twice (at t="
                        f"{event.time}) without recovering"
                    )
                down_domains[key] = event.edges
            elif event.kind in (SWITCH_UP, SRLG_UP):
                key = event.domain_key()
                if key not in down_domains:
                    raise ValidationError(
                        f"failure domain {key!r} recovers at t="
                        f"{event.time} without having failed"
                    )
                if (
                    event.kind == SRLG_UP
                    and down_domains[key] != event.edges
                ):
                    raise ValidationError(
                        f"srlg_up for {key!r} at t={event.time} lists "
                        f"members {event.edges!r}; the matching srlg_down "
                        f"listed {down_domains[key]!r}"
                    )
                del down_domains[key]
        self._events: tuple[FaultEvent, ...] = tuple(ordered)

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def link_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self._events if e.is_link)

    def fabric_events(self) -> tuple[FaultEvent, ...]:
        """Every capacity-changing event: raw link + domain kinds."""
        return tuple(e for e in self._events if e.is_fabric)

    def worker_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self._events if e.kind == WORKER_CRASH)

    def link_downtime(
        self, topology: Topology, end: float, start: float = 0.0
    ) -> float:
        """Total link-seconds of outage over ``[start, end)``.

        Counts the *union* of concurrent outages per link (a link dead
        under two overlapping domains contributes once), by sweeping the
        schedule's expanded member events with per-link multiplicity —
        the honest normalizer for comparing correlated against
        independent churn at matched downtime fraction.
        """
        count: dict[int, int] = {}
        n_down = 0
        total = 0.0
        last_t = start
        for event in self._events:
            if not event.is_fabric:
                continue
            t = min(max(event.time, start), end)
            if t > last_t:
                total += n_down * (t - last_t)
                last_t = t
            for edge in event.member_edges(topology):
                eid = topology.edge_id(edge)
                c = count.get(eid, 0)
                if event.is_down:
                    count[eid] = c + 1
                    if c == 0:
                        n_down += 1
                elif c > 0:
                    count[eid] = c - 1
                    if c == 1:
                        n_down -= 1
        if end > last_t:
            total += n_down * (end - last_t)
        return total

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def scripted(
        cls, items: Sequence[tuple]
    ) -> "FaultSchedule":
        """Build from ``(time, kind, target)`` tuples.

        ``("down"``/``"up"``, edge)`` shorthands are accepted for the
        link kinds; an int third element with kind ``"crash"`` (or
        ``worker_crash``) names a shard worker; a
        :class:`FailureDomain` target with ``"down"``/``"up"`` scripts
        the domain's own event kind (whole-switch or SRLG); a plain
        string target with ``"down"``/``"up"`` names a switch.
        """
        alias = {"down": LINK_DOWN, "up": LINK_UP, "crash": WORKER_CRASH}
        events = []
        for time, kind, target in items:
            kind = alias.get(kind, kind)
            if kind == WORKER_CRASH:
                events.append(FaultEvent(time=time, kind=kind, shard=target))
            elif isinstance(target, FailureDomain):
                events.append(
                    target.down_event(time)
                    if kind in DOWN_KINDS
                    else target.up_event(time)
                )
            elif kind in (SWITCH_DOWN, SWITCH_UP) or (
                kind in (LINK_DOWN, LINK_UP) and isinstance(target, str)
            ):
                switch_kind = (
                    SWITCH_DOWN if kind in DOWN_KINDS else SWITCH_UP
                )
                events.append(
                    FaultEvent(time=time, kind=switch_kind, node=target)
                )
            else:
                events.append(
                    FaultEvent(time=time, kind=kind, edge=tuple(target))
                )
        return cls(events)

    @classmethod
    def generate(
        cls,
        topology: Topology,
        *,
        rate: float,
        duration: float,
        start: float = 0.0,
        mttr: float | None = None,
        seed: int = 0,
        protect_host_links: bool = True,
        rng: np.random.Generator | None = None,
    ) -> "FaultSchedule":
        """Draw a seeded, connectivity-safe link-churn process.

        Failure attempts arrive Poisson at ``rate`` per unit time over
        ``[start, start + duration)``; each picks a uniformly random live
        non-host link and fails it iff every host stays connected given
        the links already down — unsafe attempts are skipped, so every
        prefix of the schedule leaves the fabric serving.  Each failed
        link recovers after an Exp(``mttr``) repair delay (default: one
        tenth of ``duration``).  Identical ``(topology, parameters,
        seed)`` always yield the identical schedule.
        """
        if rate < 0:
            raise ValidationError(f"rate must be >= 0, got {rate}")
        if duration <= 0:
            raise ValidationError(f"duration must be > 0, got {duration}")
        if mttr is None:
            mttr = duration / 10.0
        if mttr <= 0:
            raise ValidationError(f"mttr must be > 0, got {mttr}")
        if rng is None:
            rng = np.random.default_rng(seed)
        hosts = set(topology.hosts)
        candidates = [
            edge
            for edge in topology.edges
            if not (
                protect_host_links
                and (edge[0] in hosts or edge[1] in hosts)
            )
        ]
        events: list[FaultEvent] = []
        if rate == 0 or not candidates:
            return cls(events)
        graph = topology.graph.copy()
        down: set[Edge] = set()
        # (recovery time, edge) of pending repairs, kept time-sorted.
        repairs: list[tuple[float, Edge]] = []
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= start + duration:
                break
            # Apply repairs that completed before this attempt, so the
            # safety check sees the honest current fabric.
            while repairs and repairs[0][0] <= t:
                _, edge = repairs.pop(0)
                graph.add_edge(*edge)
                down.discard(edge)
            edge = candidates[int(rng.integers(len(candidates)))]
            if edge in down:
                continue
            graph.remove_edge(*edge)
            if not nx.is_connected(graph):
                graph.add_edge(*edge)
                continue
            down.add(edge)
            events.append(FaultEvent(time=t, kind=LINK_DOWN, edge=edge))
            up_at = t + float(rng.exponential(mttr))
            events.append(FaultEvent(time=up_at, kind=LINK_UP, edge=edge))
            repairs.append((up_at, edge))
            repairs.sort()
        return cls(events)

    @classmethod
    def generate_correlated(
        cls,
        topology: Topology,
        *,
        rate: float,
        duration: float,
        start: float = 0.0,
        mttr: float | None = None,
        seed: int = 0,
        domains: Sequence[FailureDomain] | None = None,
        cascade: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "FaultSchedule":
        """Draw a seeded *domain-level* Poisson churn process.

        The unit of failure is a :class:`FailureDomain` (default: every
        whole-switch domain of ``topology``), not an independent link:
        each attempt, arriving Poisson at ``rate`` per unit time over
        ``[start, start + duration)``, picks a uniformly random domain
        and — unlike :meth:`generate`, which rejects unsafe draws — fails
        it **with no connectivity check**: a whole-switch outage is
        allowed to partition the fabric (killing an edge switch strands
        its hosts).  Attempts on an already-down domain are skipped; each
        failed domain recovers after an Exp(``mttr``) repair delay
        (default one tenth of ``duration``).

        ``cascade`` adds the correlated tail that makes shared risk
        *risk*: each primary failure gives every domain whose member
        edges touch one of its endpoints (a physical-proximity proxy —
        same conduit, same linecard) an independent
        ``cascade``-probability follow-on failure after an
        Exp(``mttr / 2``) delay (secondary failures do not cascade
        further, so storms are bounded).  An edge adjacent to a down
        domain is then genuinely more likely to die soon — exactly the
        hazard SRLG-diverse repair routes away from.
        Identical ``(topology, parameters, seed)`` always yield the
        identical schedule.
        """
        if rate < 0:
            raise ValidationError(f"rate must be >= 0, got {rate}")
        if duration <= 0:
            raise ValidationError(f"duration must be > 0, got {duration}")
        if mttr is None:
            mttr = duration / 10.0
        if mttr <= 0:
            raise ValidationError(f"mttr must be > 0, got {mttr}")
        if not 0.0 <= cascade <= 1.0:
            raise ValidationError(
                f"cascade must be in [0, 1], got {cascade}"
            )
        if rng is None:
            rng = np.random.default_rng(seed)
        pool = (
            switch_domains(topology) if domains is None else tuple(domains)
        )
        events: list[FaultEvent] = []
        if rate == 0 or not pool:
            return cls(events)
        neighbors: list[list[int]] = []
        if cascade > 0:
            touches = [
                {node for edge in domain.edges for node in edge}
                for domain in pool
            ]
            neighbors = [
                [
                    j
                    for j in range(len(pool))
                    if j != i and touches[i] & touches[j]
                ]
                for i in range(len(pool))
            ]
        end = start + duration
        down_names: set[str] = set()
        repairs: list[tuple[float, str]] = []
        cascades: list[tuple[float, int]] = []

        def fail(index: int, at: float, primary: bool) -> None:
            domain = pool[index]
            down_names.add(domain.name)
            events.append(domain.down_event(at))
            up_at = at + float(rng.exponential(mttr))
            events.append(domain.up_event(up_at))
            repairs.append((up_at, domain.name))
            repairs.sort()
            if primary and cascade > 0:
                for j in neighbors[index]:
                    if rng.random() < cascade:
                        cascades.append(
                            (at + float(rng.exponential(mttr / 2.0)), j)
                        )
                cascades.sort()

        def settle(upto: float) -> None:
            # Chronological merge of repairs and cascaded follow-ons, so
            # an already-down check always sees the state at fire time.
            while True:
                t_rep = repairs[0][0] if repairs else np.inf
                t_cas = cascades[0][0] if cascades else np.inf
                if min(t_rep, t_cas) > upto:
                    return
                if t_rep <= t_cas:
                    _, name = repairs.pop(0)
                    down_names.discard(name)
                else:
                    at, index = cascades.pop(0)
                    if at < end and pool[index].name not in down_names:
                        fail(index, at, primary=False)

        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                break
            settle(t)
            index = int(rng.integers(len(pool)))
            if pool[index].name in down_names:
                continue
            fail(index, t, primary=True)
        settle(end)
        return cls(events)

    # ------------------------------------------------------------------
    # Serialization (trace-store records).
    # ------------------------------------------------------------------
    def to_records(self) -> list[dict]:
        return [event.to_record() for event in self._events]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "FaultSchedule":
        return cls(FaultEvent.from_record(r) for r in records)


# ----------------------------------------------------------------------
# Survivor-fabric helpers.
# ----------------------------------------------------------------------
def survivor_shortest_path(
    topology: Topology,
    down_edge_ids: frozenset[int] | set[int],
    src: str,
    dst: str,
) -> tuple[str, ...]:
    """Deterministic hop-shortest path avoiding the dead links.

    The same sorted-neighbor BFS as :meth:`Topology.shortest_path`, with
    edges in ``down_edge_ids`` (dense parent edge ids) skipped — so with
    an empty dead set it returns the identical route.  Raises
    :class:`TopologyError` when no surviving path exists.
    """
    if src == dst:
        raise TopologyError("shortest_path requires distinct endpoints")
    if not topology.has_node(src) or not topology.has_node(dst):
        raise TopologyError(f"unknown endpoint in ({src!r}, {dst!r})")
    edge_id = topology.edge_id
    graph = topology.graph
    parent: dict[str, str] = {src: src}
    frontier = [src]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for nbr in sorted(graph.neighbors(node)):
                if nbr in parent:
                    continue
                if edge_id(canonical_edge(node, nbr)) in down_edge_ids:
                    continue
                parent[nbr] = node
                if nbr == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return tuple(reversed(path))
                next_frontier.append(nbr)
        frontier = next_frontier
    raise TopologyError(
        f"no surviving path between {src!r} and {dst!r} "
        f"({len(down_edge_ids)} links down)"
    )


def survivor_topology(
    topology: Topology, down_edge_ids: frozenset[int] | set[int]
) -> tuple[Topology, np.ndarray]:
    """The fabric minus the dead links, plus the parent edge-id map.

    Returns ``(survivor, edge_map)`` where ``edge_map[i]`` is the parent
    edge id of survivor edge ``i`` — ``parent_vector[edge_map]``
    restricts any dense per-edge vector (background loads) to the
    survivor fabric, and survivor node paths are valid parent paths
    verbatim.  The survivor graph may be disconnected; per-pair
    reachability is the caller's concern.
    """
    graph = topology.graph.copy()
    edges = topology.edges
    for eid in sorted(down_edge_ids):
        u, v = edges[eid]
        graph.remove_edge(u, v)
    survivor = Topology(
        graph,
        name=f"{topology.name}-down{len(down_edge_ids)}",
        groups=topology.node_groups or None,
    )
    edge_map = np.asarray(
        [topology.edge_id(e) for e in survivor.edges], dtype=np.int64
    )
    return survivor, edge_map
