"""Mid-replay fault injection: seeded link churn and worker crashes.

:mod:`repro.sim.failures` degrades a fabric *before* a run.  This module
is the streaming counterpart (ROADMAP direction 3): a
:class:`FaultSchedule` is a time-ordered sequence of :class:`FaultEvent`
items — link-down, link-up, and shard-worker-crash — that the replay
engines merge into the arrival stream and apply at window boundaries.
Events are first-class trace citizens: the JSONL trace store serializes
them (:meth:`FaultEvent.to_record`), :class:`~repro.traces.store.
TraceReader` can yield them inline, and
:meth:`FaultSchedule.generate` draws a seeded, connectivity-safe churn
process so policy × failure-rate grids are reproducible.

Two small routing helpers live here too, because everything that must
reason about "the fabric minus the currently dead links" shares them:

* :func:`survivor_shortest_path` — the deterministic BFS of
  :meth:`~repro.topology.base.Topology.shortest_path` restricted to the
  surviving links (same sorted-neighbor tie-break, so with no dead links
  it returns the identical route);
* :func:`survivor_topology` — the induced :class:`Topology` on the
  surviving links plus the edge-id map back to the parent, which is what
  lets the relaxation repair tier re-solve affected flows on the honest
  survivor fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.topology.base import Edge, Topology, canonical_edge

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "survivor_shortest_path",
    "survivor_topology",
]

LINK_DOWN = "link_down"
LINK_UP = "link_up"
WORKER_CRASH = "worker_crash"

_KINDS = (LINK_DOWN, LINK_UP, WORKER_CRASH)


@dataclass(frozen=True)
class FaultEvent:
    """One fault or recovery, timestamped in trace time.

    ``edge`` (canonical, sorted endpoints) is required for the link
    kinds; ``shard`` is required for ``worker_crash`` and names the shard
    worker index the sharded service should kill.
    """

    time: float
    kind: str
    edge: Edge | None = None
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.kind in (LINK_DOWN, LINK_UP):
            if self.edge is None:
                raise ValidationError(f"{self.kind} event requires an edge")
            object.__setattr__(self, "edge", canonical_edge(*self.edge))
        elif self.shard is None or self.shard < 0:
            raise ValidationError(
                f"worker_crash event requires a shard index >= 0, "
                f"got {self.shard!r}"
            )

    @property
    def is_link(self) -> bool:
        return self.kind in (LINK_DOWN, LINK_UP)

    def to_record(self) -> dict:
        """JSONL-ready plain-data form (see :mod:`repro.traces.store`)."""
        record: dict = {"event": self.kind, "time": self.time}
        if self.edge is not None:
            record["edge"] = list(self.edge)
        if self.shard is not None:
            record["shard"] = self.shard
        return record

    @classmethod
    def from_record(cls, record: dict, where: str = "fault") -> "FaultEvent":
        try:
            edge = record.get("edge")
            return cls(
                time=float(record["time"]),
                kind=record["event"],
                edge=tuple(edge) if edge is not None else None,
                shard=record.get("shard"),
            )
        except KeyError as exc:
            raise ValidationError(f"{where}: missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"{where}: bad field value ({exc})") from exc


class FaultSchedule:
    """A time-ordered, immutable sequence of :class:`FaultEvent` items.

    The constructor sorts stably by time (events at equal times keep
    their given order — a down and an up of the same link at the same
    instant apply in sequence) and validates link-event pairing: a link
    may not go down twice without an up in between, nor up while up.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(events, key=lambda e: e.time)
        down: set[Edge] = set()
        for event in ordered:
            if event.kind == LINK_DOWN:
                if event.edge in down:
                    raise ValidationError(
                        f"link {event.edge!r} goes down twice (at t="
                        f"{event.time}) without recovering"
                    )
                down.add(event.edge)
            elif event.kind == LINK_UP:
                if event.edge not in down:
                    raise ValidationError(
                        f"link {event.edge!r} recovers at t={event.time} "
                        "without having failed"
                    )
                down.discard(event.edge)
        self._events: tuple[FaultEvent, ...] = tuple(ordered)

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def link_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self._events if e.is_link)

    def worker_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self._events if e.kind == WORKER_CRASH)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def scripted(
        cls, items: Sequence[tuple]
    ) -> "FaultSchedule":
        """Build from ``(time, kind, edge-or-shard)`` tuples.

        ``("down"``/``"up"``, edge)`` shorthands are accepted for the
        link kinds; an int third element with kind ``"crash"`` (or
        ``worker_crash``) names a shard worker.
        """
        alias = {"down": LINK_DOWN, "up": LINK_UP, "crash": WORKER_CRASH}
        events = []
        for time, kind, target in items:
            kind = alias.get(kind, kind)
            if kind == WORKER_CRASH:
                events.append(FaultEvent(time=time, kind=kind, shard=target))
            else:
                events.append(
                    FaultEvent(time=time, kind=kind, edge=tuple(target))
                )
        return cls(events)

    @classmethod
    def generate(
        cls,
        topology: Topology,
        *,
        rate: float,
        duration: float,
        start: float = 0.0,
        mttr: float | None = None,
        seed: int = 0,
        protect_host_links: bool = True,
        rng: np.random.Generator | None = None,
    ) -> "FaultSchedule":
        """Draw a seeded, connectivity-safe link-churn process.

        Failure attempts arrive Poisson at ``rate`` per unit time over
        ``[start, start + duration)``; each picks a uniformly random live
        non-host link and fails it iff every host stays connected given
        the links already down — unsafe attempts are skipped, so every
        prefix of the schedule leaves the fabric serving.  Each failed
        link recovers after an Exp(``mttr``) repair delay (default: one
        tenth of ``duration``).  Identical ``(topology, parameters,
        seed)`` always yield the identical schedule.
        """
        if rate < 0:
            raise ValidationError(f"rate must be >= 0, got {rate}")
        if duration <= 0:
            raise ValidationError(f"duration must be > 0, got {duration}")
        if mttr is None:
            mttr = duration / 10.0
        if mttr <= 0:
            raise ValidationError(f"mttr must be > 0, got {mttr}")
        if rng is None:
            rng = np.random.default_rng(seed)
        hosts = set(topology.hosts)
        candidates = [
            edge
            for edge in topology.edges
            if not (
                protect_host_links
                and (edge[0] in hosts or edge[1] in hosts)
            )
        ]
        events: list[FaultEvent] = []
        if rate == 0 or not candidates:
            return cls(events)
        graph = topology.graph.copy()
        down: set[Edge] = set()
        # (recovery time, edge) of pending repairs, kept time-sorted.
        repairs: list[tuple[float, Edge]] = []
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= start + duration:
                break
            # Apply repairs that completed before this attempt, so the
            # safety check sees the honest current fabric.
            while repairs and repairs[0][0] <= t:
                _, edge = repairs.pop(0)
                graph.add_edge(*edge)
                down.discard(edge)
            edge = candidates[int(rng.integers(len(candidates)))]
            if edge in down:
                continue
            graph.remove_edge(*edge)
            if not nx.is_connected(graph):
                graph.add_edge(*edge)
                continue
            down.add(edge)
            events.append(FaultEvent(time=t, kind=LINK_DOWN, edge=edge))
            up_at = t + float(rng.exponential(mttr))
            events.append(FaultEvent(time=up_at, kind=LINK_UP, edge=edge))
            repairs.append((up_at, edge))
            repairs.sort()
        return cls(events)

    # ------------------------------------------------------------------
    # Serialization (trace-store records).
    # ------------------------------------------------------------------
    def to_records(self) -> list[dict]:
        return [event.to_record() for event in self._events]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "FaultSchedule":
        return cls(FaultEvent.from_record(r) for r in records)


# ----------------------------------------------------------------------
# Survivor-fabric helpers.
# ----------------------------------------------------------------------
def survivor_shortest_path(
    topology: Topology,
    down_edge_ids: frozenset[int] | set[int],
    src: str,
    dst: str,
) -> tuple[str, ...]:
    """Deterministic hop-shortest path avoiding the dead links.

    The same sorted-neighbor BFS as :meth:`Topology.shortest_path`, with
    edges in ``down_edge_ids`` (dense parent edge ids) skipped — so with
    an empty dead set it returns the identical route.  Raises
    :class:`TopologyError` when no surviving path exists.
    """
    if src == dst:
        raise TopologyError("shortest_path requires distinct endpoints")
    if not topology.has_node(src) or not topology.has_node(dst):
        raise TopologyError(f"unknown endpoint in ({src!r}, {dst!r})")
    edge_id = topology.edge_id
    graph = topology.graph
    parent: dict[str, str] = {src: src}
    frontier = [src]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for nbr in sorted(graph.neighbors(node)):
                if nbr in parent:
                    continue
                if edge_id(canonical_edge(node, nbr)) in down_edge_ids:
                    continue
                parent[nbr] = node
                if nbr == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return tuple(reversed(path))
                next_frontier.append(nbr)
        frontier = next_frontier
    raise TopologyError(
        f"no surviving path between {src!r} and {dst!r} "
        f"({len(down_edge_ids)} links down)"
    )


def survivor_topology(
    topology: Topology, down_edge_ids: frozenset[int] | set[int]
) -> tuple[Topology, np.ndarray]:
    """The fabric minus the dead links, plus the parent edge-id map.

    Returns ``(survivor, edge_map)`` where ``edge_map[i]`` is the parent
    edge id of survivor edge ``i`` — ``parent_vector[edge_map]``
    restricts any dense per-edge vector (background loads) to the
    survivor fabric, and survivor node paths are valid parent paths
    verbatim.  The survivor graph may be disconnected; per-pair
    reachability is the caller's concern.
    """
    graph = topology.graph.copy()
    edges = topology.edges
    for eid in sorted(down_edge_ids):
        u, v = edges[eid]
        graph.remove_edge(u, v)
    survivor = Topology(
        graph,
        name=f"{topology.name}-down{len(down_edge_ids)}",
        groups=topology.node_groups or None,
    )
    edge_map = np.asarray(
        [topology.edge_id(e) for e in survivor.edges], dtype=np.int64
    )
    return survivor, edge_map
