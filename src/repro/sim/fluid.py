"""Fluid replay simulator: execute a schedule and measure what happens.

The analytical :class:`repro.scheduling.Schedule` computes energy by
integrating per-edge piecewise rates.  This simulator is a deliberately
*independent* implementation that replays the schedule over time and
accumulates energy, per-flow progress, link utilization and capacity
violations.  Agreement between the two is asserted by the integration
tests — a strong guard against sign/tolerance bugs in either.

It is also the "simulator ... implemented in Python" of the paper's
Section V-C, in the same fluid-flow tradition.

:func:`simulate_fluid` is event-driven (DESIGN.md Section 8): every flow
segment contributes a ``+rate`` event at its (horizon-clipped) start and a
``-rate`` event at its end on each link of the flow's path, and per-link
statistics come from one vectorized sweep over that link's own event
boundaries instead of reconstructing every link's instantaneous rate at
every *global* epoch.  :func:`simulate_fluid_reference` retains the
original O(epochs x flows x path) reconstruction; the two are pinned
against each other by ``tests/test_perf_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.scheduling.schedule import Schedule
from repro.topology.base import Edge, Topology

__all__ = [
    "LinkStats",
    "SimulationReport",
    "simulate_fluid",
    "simulate_fluid_reference",
]

@dataclass(frozen=True)
class LinkStats:
    """Per-link statistics gathered during the replay."""

    peak_rate: float
    busy_time: float
    volume_carried: float
    dynamic_energy: float

    def utilization(self, horizon_length: float) -> float:
        """Fraction of the horizon the link carried traffic."""
        if horizon_length <= 0:
            raise ValidationError("horizon_length must be positive")
        return self.busy_time / horizon_length


@dataclass
class SimulationReport:
    """Everything the fluid replay observed."""

    horizon: tuple[float, float]
    total_energy: float
    idle_energy: float
    dynamic_energy: float
    active_links: int
    completion_times: Mapping[int | str, float]
    deadlines_met: Mapping[int | str, bool]
    link_stats: Mapping[Edge, LinkStats]
    capacity_violations: list[str] = field(default_factory=list)
    epochs: int = 0

    @property
    def all_deadlines_met(self) -> bool:
        return all(self.deadlines_met.values())


def _link_profile(
    pieces: list[tuple[float, float, float]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked-rate profile of one link from its (start, end, rate) pieces.

    Returns ``(points, values, counts)`` where ``values[i]`` is the summed
    rate and ``counts[i]`` the number of concurrent pieces on
    ``[points[i], points[i+1])``.  Rates accumulate as an event-diff
    cumsum (``+rate`` at each start, ``-rate`` at each end) — an algorithm
    deliberately different from ``PiecewiseConstant``'s per-slot compile,
    so the simulator stays an independent cross-check of the analytical
    energy.  Activity is tracked with the same sweep over exact integer
    counts, immune to the float cancellation noise the rate cumsum can
    carry past a link's last piece.
    """
    starts = np.array([s for s, _, _ in pieces])
    ends = np.array([e for _, e, _ in pieces])
    rates = np.array([r for _, _, r in pieces])
    points = np.unique(np.concatenate((starts, ends)))
    first = np.searchsorted(points, starts)
    last = np.searchsorted(points, ends)
    diff = np.zeros(points.size)
    np.add.at(diff, first, rates)
    np.add.at(diff, last, -rates)
    values = np.cumsum(diff[:-1])
    count_diff = np.zeros(points.size, dtype=np.int64)
    np.add.at(count_diff, first, 1)
    np.add.at(count_diff, last, -1)
    counts = np.cumsum(count_diff[:-1])
    return points, values, counts


def simulate_fluid(
    schedule: Schedule,
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    horizon: tuple[float, float] | None = None,
    tol: float = 1e-6,
) -> SimulationReport:
    """Replay ``schedule`` with per-link event sweeps and report energy +
    feasibility.

    Semantics match :func:`simulate_fluid_reference`: flows progress only
    inside the horizon, completion times snap to the global epoch grid
    (every segment boundary of every flow), and a link is active on
    exactly the epochs where some segment covers it.  Capacity violations
    are reported per link event-slot rather than per global epoch, so the
    list is coarser (but covers the same violation measure).
    """
    if horizon is None:
        horizon = flows.horizon
    t0, t1 = horizon
    bounds = {t0, t1}
    for fs in schedule:
        for seg in fs.segments:
            if t0 <= seg.start <= t1:
                bounds.add(seg.start)
            if t0 <= seg.end <= t1:
                bounds.add(seg.end)
    if len(bounds) < 2:
        raise ValidationError("schedule has no extent inside the horizon")
    epochs = np.array(sorted(bounds))

    # Horizon-clipped pieces, per flow and per link.
    flow_pieces: dict[int | str, list[tuple[float, float, float]]] = {}
    edge_pieces: dict[Edge, list[tuple[float, float, float]]] = {}
    for fs in schedule:
        pieces = flow_pieces.setdefault(fs.flow.id, [])
        for seg in fs.segments:
            s, e = max(seg.start, t0), min(seg.end, t1)
            if e <= s:
                continue
            pieces.append((s, e, seg.rate))
            for edge in fs.edges:
                edge_pieces.setdefault(edge, []).append((s, e, seg.rate))

    # ------------------------------------------------------------------
    # Per-link sweeps.
    # ------------------------------------------------------------------
    stats: dict[Edge, LinkStats] = {}
    violations: list[str] = []
    dynamic = 0.0
    for edge, pieces in edge_pieces.items():
        points, values, counts = _link_profile(pieces)
        covered = counts > 0
        widths = np.diff(points)
        v = values[covered]
        w = widths[covered]
        dyn = float(np.dot(power.mu * np.power(v, power.alpha), w))
        dynamic += dyn
        stats[edge] = LinkStats(
            peak_rate=float(v.max()),
            busy_time=float(w.sum()),
            volume_carried=float(np.dot(v, w)),
            dynamic_energy=dyn,
        )
        limit = power.capacity * (1.0 + tol)
        over = covered & (values > limit)
        for i in np.flatnonzero(over).tolist():
            violations.append(
                f"link {edge!r}: rate {values[i]:.6g} > capacity "
                f"{power.capacity:g} during [{points[i]:g}, {points[i + 1]:g}]"
            )

    # ------------------------------------------------------------------
    # Per-flow completion: the first global epoch by which the flow's
    # cumulative delivered volume reaches size * (1 - tol).
    # ------------------------------------------------------------------
    completion: dict[int | str, float] = {}
    for fid, pieces in flow_pieces.items():
        flow = flows[fid]
        if not pieces:
            continue
        ps = np.array([s for s, _, _ in pieces])
        pe = np.array([e for _, e, _ in pieces])
        pr = np.array([r for _, _, r in pieces])
        cum = np.concatenate(([0.0], np.cumsum(pr * (pe - ps))))
        theta = flow.size * (1.0 - tol)

        def delivered_by(t: float) -> float:
            k = int(np.searchsorted(pe, t, side="left"))
            if k >= ps.size:
                return float(cum[-1])
            partial = max(0.0, (min(t, pe[k]) - ps[k])) * pr[k]
            return float(cum[k]) + partial

        if delivered_by(float(epochs[-1])) < theta:
            continue
        lo, hi = 0, epochs.size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if delivered_by(float(epochs[mid])) >= theta:
                hi = mid
            else:
                lo = mid + 1
        completion[fid] = float(epochs[lo])

    deadlines_met = {}
    for flow in flows:
        done = completion.get(flow.id)
        deadlines_met[flow.id] = done is not None and done <= flow.deadline + tol

    idle = power.sigma * (t1 - t0) * len(stats)
    return SimulationReport(
        horizon=horizon,
        total_energy=idle + dynamic,
        idle_energy=idle,
        dynamic_energy=dynamic,
        active_links=len(stats),
        completion_times=completion,
        deadlines_met=deadlines_met,
        link_stats=stats,
        capacity_violations=violations,
        epochs=epochs.size - 1,
    )


def simulate_fluid_reference(
    schedule: Schedule,
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    horizon: tuple[float, float] | None = None,
    tol: float = 1e-6,
) -> SimulationReport:
    """Replay ``schedule`` epoch by epoch and report energy + feasibility.

    The original global-epoch sweep, reconstructing every link's
    instantaneous rate from scratch at each epoch — retained as the
    pinning reference for the event-driven :func:`simulate_fluid`.
    """
    if horizon is None:
        horizon = flows.horizon
    t0, t1 = horizon

    # Global epochs: all segment boundaries, clipped to the horizon.
    times = {t0, t1}
    for fs in schedule:
        for seg in fs.segments:
            times.add(seg.start)
            times.add(seg.end)
    epochs = sorted(t for t in times if t0 <= t <= t1)
    if len(epochs) < 2:
        raise ValidationError("schedule has no extent inside the horizon")

    # Per-flow segment iterators: (start, end, rate, edges).
    flow_pieces = {
        fs.flow.id: [(s.start, s.end, s.rate, fs.edges) for s in fs.segments]
        for fs in schedule
    }

    transmitted: dict[int | str, float] = {fid: 0.0 for fid in flow_pieces}
    completion: dict[int | str, float] = {}
    peak: dict[Edge, float] = {}
    busy: dict[Edge, float] = {}
    volume: dict[Edge, float] = {}
    dyn_energy: dict[Edge, float] = {}
    violations: list[str] = []

    for a, b in zip(epochs, epochs[1:]):
        dt = b - a
        rates: dict[Edge, float] = {}
        for fid, pieces in flow_pieces.items():
            for s, e, rate, edges in pieces:
                if s <= a and b <= e:
                    transmitted[fid] += rate * dt
                    for edge in edges:
                        rates[edge] = rates.get(edge, 0.0) + rate
            flow = flows[fid]
            if (
                fid not in completion
                and transmitted[fid] >= flow.size * (1.0 - tol)
            ):
                completion[fid] = b
        for edge, rate in rates.items():
            peak[edge] = max(peak.get(edge, 0.0), rate)
            busy[edge] = busy.get(edge, 0.0) + dt
            volume[edge] = volume.get(edge, 0.0) + rate * dt
            dyn_energy[edge] = dyn_energy.get(edge, 0.0) + power.dynamic_power(
                rate
            ) * dt
            if rate > power.capacity * (1.0 + tol):
                violations.append(
                    f"link {edge!r}: rate {rate:.6g} > capacity "
                    f"{power.capacity:g} during [{a:g}, {b:g}]"
                )

    deadlines_met = {}
    for flow in flows:
        done = completion.get(flow.id)
        deadlines_met[flow.id] = (
            done is not None and done <= flow.deadline + tol
        )

    idle = power.sigma * (t1 - t0) * len(peak)
    dynamic = sum(dyn_energy.values())
    stats = {
        edge: LinkStats(
            peak_rate=peak[edge],
            busy_time=busy[edge],
            volume_carried=volume[edge],
            dynamic_energy=dyn_energy[edge],
        )
        for edge in peak
    }
    return SimulationReport(
        horizon=horizon,
        total_energy=idle + dynamic,
        idle_energy=idle,
        dynamic_energy=dynamic,
        active_links=len(peak),
        completion_times=completion,
        deadlines_met=deadlines_met,
        link_stats=stats,
        capacity_violations=violations,
        epochs=len(epochs) - 1,
    )
