"""Fluid replay simulator: execute a schedule and measure what happens.

The analytical :class:`repro.scheduling.Schedule` computes energy by
integrating per-edge piecewise rates.  This simulator is a deliberately
*independent* implementation: it sweeps global event times (every segment
boundary of every flow), reconstructs instantaneous link rates from scratch
at each epoch, and accumulates energy, per-flow progress, link utilization
and capacity violations.  Agreement between the two is asserted by the
integration tests — a strong guard against sign/tolerance bugs in either.

It is also the "simulator ... implemented in Python" of the paper's
Section V-C, in the same fluid-flow tradition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.power.model import PowerModel
from repro.scheduling.schedule import Schedule
from repro.topology.base import Edge, Topology

__all__ = ["LinkStats", "SimulationReport", "simulate_fluid"]


@dataclass(frozen=True)
class LinkStats:
    """Per-link statistics gathered during the replay."""

    peak_rate: float
    busy_time: float
    volume_carried: float
    dynamic_energy: float

    def utilization(self, horizon_length: float) -> float:
        """Fraction of the horizon the link carried traffic."""
        if horizon_length <= 0:
            raise ValidationError("horizon_length must be positive")
        return self.busy_time / horizon_length


@dataclass
class SimulationReport:
    """Everything the fluid replay observed."""

    horizon: tuple[float, float]
    total_energy: float
    idle_energy: float
    dynamic_energy: float
    active_links: int
    completion_times: Mapping[int | str, float]
    deadlines_met: Mapping[int | str, bool]
    link_stats: Mapping[Edge, LinkStats]
    capacity_violations: list[str] = field(default_factory=list)
    epochs: int = 0

    @property
    def all_deadlines_met(self) -> bool:
        return all(self.deadlines_met.values())


def simulate_fluid(
    schedule: Schedule,
    flows: FlowSet,
    topology: Topology,
    power: PowerModel,
    horizon: tuple[float, float] | None = None,
    tol: float = 1e-6,
) -> SimulationReport:
    """Replay ``schedule`` epoch by epoch and report energy + feasibility."""
    if horizon is None:
        horizon = flows.horizon
    t0, t1 = horizon

    # Global epochs: all segment boundaries, clipped to the horizon.
    times = {t0, t1}
    for fs in schedule:
        for seg in fs.segments:
            times.add(seg.start)
            times.add(seg.end)
    epochs = sorted(t for t in times if t0 <= t <= t1)
    if len(epochs) < 2:
        raise ValidationError("schedule has no extent inside the horizon")

    # Per-flow segment iterators: (start, end, rate, edges).
    flow_pieces = {
        fs.flow.id: [(s.start, s.end, s.rate, fs.edges) for s in fs.segments]
        for fs in schedule
    }

    transmitted: dict[int | str, float] = {fid: 0.0 for fid in flow_pieces}
    completion: dict[int | str, float] = {}
    peak: dict[Edge, float] = {}
    busy: dict[Edge, float] = {}
    volume: dict[Edge, float] = {}
    dyn_energy: dict[Edge, float] = {}
    violations: list[str] = []

    for a, b in zip(epochs, epochs[1:]):
        dt = b - a
        rates: dict[Edge, float] = {}
        for fid, pieces in flow_pieces.items():
            for s, e, rate, edges in pieces:
                if s <= a and b <= e:
                    transmitted[fid] += rate * dt
                    for edge in edges:
                        rates[edge] = rates.get(edge, 0.0) + rate
            flow = flows[fid]
            if (
                fid not in completion
                and transmitted[fid] >= flow.size * (1.0 - tol)
            ):
                completion[fid] = b
        for edge, rate in rates.items():
            peak[edge] = max(peak.get(edge, 0.0), rate)
            busy[edge] = busy.get(edge, 0.0) + dt
            volume[edge] = volume.get(edge, 0.0) + rate * dt
            dyn_energy[edge] = dyn_energy.get(edge, 0.0) + power.dynamic_power(
                rate
            ) * dt
            if rate > power.capacity * (1.0 + tol):
                violations.append(
                    f"link {edge!r}: rate {rate:.6g} > capacity "
                    f"{power.capacity:g} during [{a:g}, {b:g}]"
                )

    deadlines_met = {}
    for flow in flows:
        done = completion.get(flow.id)
        deadlines_met[flow.id] = (
            done is not None and done <= flow.deadline + tol
        )

    idle = power.sigma * (t1 - t0) * len(peak)
    dynamic = sum(dyn_energy.values())
    stats = {
        edge: LinkStats(
            peak_rate=peak[edge],
            busy_time=busy[edge],
            volume_carried=volume[edge],
            dynamic_energy=dyn_energy[edge],
        )
        for edge in peak
    }
    return SimulationReport(
        horizon=horizon,
        total_energy=idle + dynamic,
        idle_energy=idle,
        dynamic_energy=dynamic,
        active_links=len(peak),
        completion_times=completion,
        deadlines_met=deadlines_met,
        link_stats=stats,
        capacity_violations=violations,
        epochs=len(epochs) - 1,
    )
