"""Link-failure degradation: how robust is the energy advantage?

An extension beyond the paper: DCNs lose links routinely, and an
energy-optimizing scheduler must keep meeting deadlines on the degraded
fabric.  :func:`fail_links` removes a host-safe subset of links (never
disconnecting any host) and the failure ablation re-runs Random-Schedule
and SP+MCF on the survivor topology.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.topology.base import Edge, Topology

__all__ = ["fail_links"]


def fail_links(
    topology: Topology,
    count: int,
    seed: int = 0,
    protect_host_links: bool = True,
    rng: np.random.Generator | None = None,
) -> tuple[Topology, tuple[Edge, ...]]:
    """Remove ``count`` random links while keeping every host reachable.

    Candidate links are drawn uniformly (host access links excluded when
    ``protect_host_links``); a candidate whose removal disconnects the
    graph is skipped.  Raises when fewer than ``count`` safe removals
    exist.  A pre-seeded ``rng`` overrides ``seed`` — callers drawing
    several correlated failure sets (churn grids) can share one
    generator stream.

    Returns the degraded :class:`Topology` and the failed edges.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    graph = topology.graph.copy()
    hosts = set(topology.hosts)

    candidates = [
        edge
        for edge in topology.edges
        if not (protect_host_links and (edge[0] in hosts or edge[1] in hosts))
    ]
    if rng is None:
        rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(candidates)))

    failed: list[Edge] = []
    skipped = 0
    for index in order:
        if len(failed) >= count:
            break
        u, v = candidates[index]
        graph.remove_edge(u, v)
        if nx.is_connected(graph):
            failed.append((u, v))
        else:
            graph.add_edge(u, v)
            skipped += 1
    if len(failed) < count:
        raise TopologyError(
            f"only {len(failed)} of {count} links can fail without "
            f"disconnecting the fabric ({skipped} unsafe candidates "
            f"skipped of {len(candidates)})"
        )
    degraded = Topology(graph, name=f"{topology.name}-minus{count}")
    return degraded, tuple(sorted(failed))
