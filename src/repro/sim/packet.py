"""Store-and-forward packet-level validator.

Section III of the paper extends the virtual-circuit analysis to real
packet-switching networks: packets carry their flow's priority and each
link serves queued packets in priority order.  This simulator realizes
that model to validate that a fluid schedule's deadlines survive
packetization:

* every flow is chopped into packets of ``packet_size`` (the final one may
  be smaller);
* a packet becomes available at the source when the flow's *fluid* profile
  has produced its bytes;
* every link serves one packet at a time, drawing transmission speed from
  the link's scheduled aggregate rate profile (so a packet transmits
  exactly as fast as the fluid schedule funds that link);
* queueing is per-link, ordered by the chosen priority rule — ``"edf"``
  (earliest flow deadline, Algorithm 2's policy) or ``"start"`` (earliest
  scheduled start, Section III-C's rule for Most-Critical-First);
* packets hop store-and-forward; arrival at the destination timestamps it.

Store-and-forward necessarily adds up to ``(hops - 1) * packet_time`` of
pipeline fill latency over the fluid finish time, so the report exposes a
per-flow *lateness bound* against which tests assert.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Literal, Mapping

from repro.errors import ValidationError
from repro.flows.flow import FlowSet
from repro.scheduling.schedule import Schedule
from repro.scheduling.timeline import PiecewiseConstant
from repro.topology.base import Edge

__all__ = ["PacketReport", "simulate_packets"]

_EPS = 1e-9


class _RateServer:
    """Inverts a link's cumulative scheduled-rate curve.

    ``finish(start, volume)`` answers: serving at the link's scheduled rate
    from ``start``, when has ``volume`` been transmitted?  Store-and-forward
    pipelining pushes the tail packets slightly past the fluid profile's
    end, so after the last scheduled piece the link keeps serving at its
    maximum scheduled rate ("overtime"); the amount of overtime shows up in
    the report's lateness figures rather than as a hard failure.
    """

    def __init__(self, profile: PiecewiseConstant) -> None:
        self._pieces = [p for p in profile.pieces() if p[2] > 0.0]
        if not self._pieces:
            raise ValidationError("rate profile is empty")
        self._end = self._pieces[-1][1]
        self._overtime_rate = max(rate for _a, _b, rate in self._pieces)

    def finish(self, start: float, volume: float) -> float:
        remaining = volume
        for a, b, rate in self._pieces:
            if b <= start:
                continue
            begin = max(a, start)
            capacity = rate * (b - begin)
            if capacity >= remaining - _EPS:
                return begin + remaining / rate
            remaining -= capacity
        begin = max(self._end, start)
        return begin + remaining / self._overtime_rate


@dataclass(frozen=True)
class _Packet:
    flow_id: int | str
    seq: int
    size: float
    priority: tuple
    path: tuple[str, ...]


@dataclass
class PacketReport:
    """Per-flow packet-level outcomes.

    ``lateness`` is ``last packet arrival - deadline`` (negative = early).
    ``lateness_estimate`` is the heuristic per-hop pipeline figure
    ``(hops-1) * max interval + hops * packet time``; cascaded backlogs can
    exceed it when consecutive intervals change the flow mix sharply (the
    paper's Section III packet extension does not bound this either), so it
    is a diagnostic yardstick, not a guarantee.  Tests assert the hard
    invariants: every packet is delivered, per-flow delivery respects the
    packet order, and lateness stays a small fraction of the horizon.
    """

    arrival_times: Mapping[int | str, float]
    lateness: Mapping[int | str, float]
    lateness_estimate: Mapping[int | str, float]
    packets_delivered: int
    max_queue_length: int

    @property
    def max_lateness(self) -> float:
        return max(self.lateness.values())

    @property
    def within_estimate(self) -> bool:
        """True when every flow's lateness stays under the heuristic
        pipeline estimate."""
        return all(
            self.lateness[fid] <= self.lateness_estimate[fid] + 1e-6
            for fid in self.lateness
        )


def _availability_times(
    segments, size: float, packet_size: float
) -> list[tuple[float, float]]:
    """Source availability time and size of each packet of a flow.

    Packet ``j`` is available once the fluid profile has produced
    ``j * packet_size`` bytes — i.e. the source cannot inject faster than
    its scheduled rate.
    """
    packets: list[tuple[float, float]] = []
    produced = 0.0
    target = 0.0
    remaining_total = size
    cursor = 0
    seg_list = [(s.start, s.end, s.rate) for s in segments]
    while remaining_total > _EPS:
        this_size = min(packet_size, remaining_total)
        target += this_size
        # Advance through segments until cumulative production hits
        # ``target - this_size`` (the first byte of this packet exists).
        need = target - this_size
        produced_before = 0.0
        available = None
        for a, b, rate in seg_list:
            chunk = rate * (b - a)
            if produced_before + chunk >= need - _EPS:
                available = a + max(0.0, (need - produced_before)) / rate
                break
            produced_before += chunk
        if available is None:  # pragma: no cover - guarded by verify()
            raise ValidationError("flow profile produces less than its size")
        packets.append((available, this_size))
        remaining_total -= this_size
        cursor += 1
    return packets


def simulate_packets(
    schedule: Schedule,
    flows: FlowSet,
    packet_size: float = 0.25,
    priority: Literal["edf", "start"] = "edf",
) -> PacketReport:
    """Run the store-and-forward packet simulation for a whole schedule."""
    if packet_size <= 0:
        raise ValidationError(f"packet_size must be > 0, got {packet_size}")
    if priority not in ("edf", "start"):
        raise ValidationError(f"unknown priority rule {priority!r}")

    servers: dict[Edge, _RateServer] = {
        edge: _RateServer(profile)
        for edge, profile in schedule.link_rates().items()
    }

    # Build packets.
    packets: list[tuple[float, _Packet]] = []
    slowest_packet_time: dict[int | str, float] = {}
    for fs in schedule:
        flow = fs.flow
        if priority == "edf":
            prio = (flow.deadline, str(flow.id))
        else:
            prio = (fs.segments[0].start, str(flow.id))
        min_rate = min(s.rate for s in fs.segments)
        slowest_packet_time[flow.id] = packet_size / min_rate
        for seq, (available, size) in enumerate(
            _availability_times(fs.segments, flow.size, packet_size)
        ):
            packets.append(
                (
                    available,
                    _Packet(
                        flow_id=flow.id,
                        seq=seq,
                        size=size,
                        priority=prio + (seq,),
                        path=fs.path,
                    ),
                )
            )

    # Event-driven store-and-forward.
    counter = itertools.count()
    events: list[tuple[float, int, str, object]] = []
    for available, packet in packets:
        heapq.heappush(events, (available, next(counter), "arrive", (packet, 0)))

    queues: dict[Edge, list[tuple[tuple, int, _Packet, int]]] = {}
    busy_until: dict[Edge, float] = {}
    arrivals: dict[int | str, float] = {}
    delivered = 0
    max_queue = 0

    def edge_at(packet: _Packet, hop: int) -> Edge:
        u, v = packet.path[hop], packet.path[hop + 1]
        return (u, v) if u < v else (v, u)

    def try_start(edge: Edge, now: float) -> None:
        nonlocal max_queue
        queue = queues.get(edge)
        if not queue or busy_until.get(edge, -math.inf) > now + _EPS:
            return
        max_queue = max(max_queue, len(queue))
        _prio, _c, packet, hop = heapq.heappop(queue)
        finish = servers[edge].finish(now, packet.size)
        if math.isinf(finish):
            raise ValidationError(
                f"link {edge!r} has insufficient scheduled capacity for "
                f"flow {packet.flow_id!r} packet {packet.seq}"
            )
        busy_until[edge] = finish
        heapq.heappush(
            events, (finish, next(counter), "served", (packet, hop, edge))
        )

    while events:
        now, _seq, kind, payload = heapq.heappop(events)
        if kind == "arrive":
            packet, hop = payload
            edge = edge_at(packet, hop)
            queues.setdefault(edge, [])
            heapq.heappush(
                queues[edge], (packet.priority, next(counter), packet, hop)
            )
            try_start(edge, now)
        else:  # "served"
            packet, hop, edge = payload
            busy_until[edge] = now
            if hop + 1 < len(packet.path) - 1:
                heapq.heappush(
                    events, (now, next(counter), "arrive", (packet, hop + 1))
                )
            else:
                delivered += 1
                arrivals[packet.flow_id] = max(
                    arrivals.get(packet.flow_id, -math.inf), now
                )
            try_start(edge, now)

    # Heuristic per-hop pipeline estimate (see PacketReport docstring).
    max_interval = max(
        b - a for a, b in zip(flows.breakpoints(), flows.breakpoints()[1:])
    )
    lateness = {}
    estimates = {}
    for fs in schedule:
        flow = fs.flow
        hops = fs.num_links
        lateness[flow.id] = arrivals[flow.id] - flow.deadline
        estimates[flow.id] = (
            (hops - 1) * max_interval + hops * slowest_packet_time[flow.id]
        )
    return PacketReport(
        arrival_times=arrivals,
        lateness=lateness,
        lateness_estimate=estimates,
        packets_delivered=delivered,
        max_queue_length=max_queue,
    )
