"""Simulators: fluid replay, packet validation, and fault injection."""

from repro.sim.churn import (
    FailureDomain,
    FaultEvent,
    FaultSchedule,
    survivor_shortest_path,
    survivor_topology,
    switch_domains,
)
from repro.sim.failures import fail_links
from repro.sim.fluid import (
    LinkStats,
    SimulationReport,
    simulate_fluid,
    simulate_fluid_reference,
)
from repro.sim.packet import PacketReport, simulate_packets

__all__ = [
    "LinkStats",
    "SimulationReport",
    "simulate_fluid",
    "simulate_fluid_reference",
    "PacketReport",
    "simulate_packets",
    "fail_links",
    "FailureDomain",
    "FaultEvent",
    "FaultSchedule",
    "survivor_shortest_path",
    "survivor_topology",
    "switch_domains",
]
