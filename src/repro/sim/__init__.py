"""Simulators: fluid replay and store-and-forward packet validation."""

from repro.sim.failures import fail_links
from repro.sim.fluid import (
    LinkStats,
    SimulationReport,
    simulate_fluid,
    simulate_fluid_reference,
)
from repro.sim.packet import PacketReport, simulate_packets

__all__ = [
    "LinkStats",
    "SimulationReport",
    "simulate_fluid",
    "simulate_fluid_reference",
    "PacketReport",
    "simulate_packets",
    "fail_links",
]
